// Tests for both Transport implementations: FIFO-per-channel delivery,
// conservation counts, quiescence.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "net/sim_transport.hpp"
#include "net/thread_transport.hpp"
#include "serial/reader.hpp"
#include "sim/latency.hpp"

namespace causim::net {
namespace {

serial::Bytes payload(std::uint32_t v) {
  serial::ByteWriter w;
  w.put_u32(v);
  return w.take();
}

std::uint32_t value_of(const Packet& p) {
  serial::ByteReader r(p.bytes);
  return r.get_u32();
}

/// Collects packets per (from, to) channel.
class Collector final : public PacketHandler {
 public:
  void on_packet(Packet p) override {
    std::lock_guard lock(mutex_);
    per_channel_[{p.from, p.to}].push_back(value_of(p));
    ++total_;
  }

  std::vector<std::uint32_t> channel(SiteId from, SiteId to) const {
    std::lock_guard lock(mutex_);
    const auto it = per_channel_.find({from, to});
    return it == per_channel_.end() ? std::vector<std::uint32_t>{} : it->second;
  }

  std::size_t total() const {
    std::lock_guard lock(mutex_);
    return total_;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<SiteId, SiteId>, std::vector<std::uint32_t>> per_channel_;
  std::size_t total_ = 0;
};

TEST(SimTransport, DeliversToAttachedHandler) {
  sim::Simulator simulator;
  const sim::FixedLatency latency(10);
  SimTransport transport(simulator, latency, 2, 1);
  Collector c0, c1;
  transport.attach(0, &c0);
  transport.attach(1, &c1);
  transport.send(0, 1, payload(7));
  simulator.run();
  EXPECT_EQ(c1.channel(0, 1), (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(c0.total(), 0u);
  EXPECT_EQ(transport.packets_sent(), 1u);
  EXPECT_EQ(transport.packets_delivered(), 1u);
}

TEST(SimTransport, FifoPerChannelUnderRandomLatency) {
  sim::Simulator simulator;
  const sim::UniformLatency latency(1, 1000);
  SimTransport transport(simulator, latency, 3, 42);
  Collector collectors[3];
  for (SiteId i = 0; i < 3; ++i) transport.attach(i, &collectors[i]);

  // Interleave sends on several channels; each channel must stay ordered.
  for (std::uint32_t k = 0; k < 50; ++k) {
    transport.send(0, 1, payload(k));
    transport.send(0, 2, payload(100 + k));
    transport.send(2, 1, payload(200 + k));
  }
  simulator.run();
  const auto check_sorted = [](const std::vector<std::uint32_t>& v, std::uint32_t base) {
    ASSERT_EQ(v.size(), 50u);
    for (std::uint32_t k = 0; k < 50; ++k) EXPECT_EQ(v[k], base + k);
  };
  check_sorted(collectors[1].channel(0, 1), 0);
  check_sorted(collectors[2].channel(0, 2), 100);
  check_sorted(collectors[1].channel(2, 1), 200);
  EXPECT_EQ(transport.packets_delivered(), 150u);
}

TEST(SimTransport, CrossChannelReorderingHappens) {
  sim::Simulator simulator;
  const sim::UniformLatency latency(1, 1000);
  SimTransport transport(simulator, latency, 3, 7);

  std::vector<int> arrivals;  // which sender arrived when at site 2
  class Recorder final : public PacketHandler {
   public:
    explicit Recorder(std::vector<int>& a) : arrivals_(a) {}
    void on_packet(Packet p) override { arrivals_.push_back(p.from); }

   private:
    std::vector<int>& arrivals_;
  } recorder(arrivals);
  Collector dummy;
  transport.attach(0, &dummy);
  transport.attach(1, &dummy);
  transport.attach(2, &recorder);

  for (int k = 0; k < 30; ++k) {
    transport.send(0, 2, payload(k));
    transport.send(1, 2, payload(k));
  }
  simulator.run();
  // With a wide latency range the two senders' arrivals must interleave in
  // a non-strictly-alternating pattern at least once.
  bool reordered = false;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i] == arrivals[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(ThreadTransport, DeliversAndQuiesces) {
  ThreadTransport transport(2);
  Collector c0, c1;
  transport.attach(0, &c0);
  transport.attach(1, &c1);
  transport.start();
  for (std::uint32_t k = 0; k < 100; ++k) transport.send(0, 1, payload(k));
  transport.quiesce();
  EXPECT_EQ(c1.total(), 100u);
  EXPECT_EQ(c1.channel(0, 1).size(), 100u);
  transport.stop();
  EXPECT_EQ(transport.packets_sent(), transport.packets_delivered());
}

TEST(ThreadTransport, FifoPerChannelFromConcurrentSenders) {
  ThreadTransport::Options options;
  options.max_delay_us = 200;  // exercise the artificial wire
  ThreadTransport transport(4, options);
  Collector collectors[4];
  for (SiteId i = 0; i < 4; ++i) transport.attach(i, &collectors[i]);
  transport.start();

  std::vector<std::thread> senders;
  for (SiteId from = 0; from < 3; ++from) {
    senders.emplace_back([&transport, from] {
      for (std::uint32_t k = 0; k < 200; ++k) {
        transport.send(from, 3, payload(k));
      }
    });
  }
  for (auto& t : senders) t.join();
  transport.quiesce();
  for (SiteId from = 0; from < 3; ++from) {
    const auto seq = collectors[3].channel(from, 3);
    ASSERT_EQ(seq.size(), 200u) << "from " << from;
    for (std::uint32_t k = 0; k < 200; ++k) {
      ASSERT_EQ(seq[k], k) << "FIFO violated on channel " << from << "->3";
    }
  }
  transport.stop();
}

TEST(ThreadTransport, StopIsIdempotent) {
  ThreadTransport transport(1);
  Collector c;
  transport.attach(0, &c);
  transport.start();
  transport.stop();
  transport.stop();
}

}  // namespace
}  // namespace causim::net
