// KV front-end conformance suite.
//
// Three layers of coverage:
//
//   * unit — KeyMap routing and Session's causal-cut admissibility rules
//     (the sound same-writer fragment: clock regression and
//     null-after-non-null are the only rejections);
//   * conformance matrix — run_service over every protocol on every
//     substrate (DES, per-site threads, pooled workers), fault-free and
//     under uniform drop rates: the checker must pass, every session
//     guarantee must hold (violations == 0), and the schedule must be
//     fully served;
//   * determinism — on the DES substrate the whole service result,
//     serialized through the bench.v1 `service` block, must be
//     byte-identical across runs of the same seed (the CI gate diffs
//     these bytes against the stored baseline).
//
// Plus a staleness A/B: with enforcement off the store only counts
// inadmissible reads; the same seed with enforcement on must convert
// every one of them into retries and end with zero violations.
//
// Matrix seed count scales with CAUSIM_KV_SEEDS (default 3).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "kv/key_map.hpp"
#include "kv/service.hpp"
#include "kv/session.hpp"

namespace causim {
namespace {

int seed_count() {
  if (const char* env = std::getenv("CAUSIM_KV_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

// ---------------------------------------------------------------------------
// KeyMap

TEST(KeyMap, DirectModeIsIdentity) {
  const kv::KeyMap map(16, kv::KeyMap::Mode::kDirect);
  for (kv::KvKey k = 0; k < 16; ++k) EXPECT_EQ(map.var_of(k), k);
}

TEST(KeyMap, DirectModeRejectsOutOfRange) {
  const kv::KeyMap map(4, kv::KeyMap::Mode::kDirect);
  EXPECT_DEATH(map.var_of(4), "outside");
}

TEST(KeyMap, HashedModeCoversAndSpreads) {
  const VarId q = 32;
  const kv::KeyMap map(q);
  std::vector<std::uint64_t> hits(q, 0);
  const std::uint64_t keys = 32'000;
  for (kv::KvKey k = 0; k < keys; ++k) {
    const VarId v = map.var_of(k);
    ASSERT_LT(v, q);
    ++hits[v];
    EXPECT_EQ(map.var_of(k), v);  // deterministic
  }
  // splitmix64 is full-avalanche: each variable should land near
  // keys/q = 1000; a 3:1 spread would flag a broken fold.
  for (VarId v = 0; v < q; ++v) {
    EXPECT_GT(hits[v], keys / q / 2) << "variable " << v << " starved";
    EXPECT_LT(hits[v], keys / q * 2) << "variable " << v << " overloaded";
  }
}

// ---------------------------------------------------------------------------
// Session admissibility

TEST(Session, FreshSessionAdmitsEverything) {
  kv::Session session(0, 0);
  EXPECT_TRUE(session.admissible(7, WriteId{}));          // null at ⊥ is fine
  EXPECT_TRUE(session.admissible(7, WriteId{2, 5}));      // any value is fine
}

TEST(Session, PutRaisesTheCut) {
  kv::Session session(0, 0);
  session.note_put(3, WriteId{1, 5});
  EXPECT_FALSE(session.admissible(3, WriteId{}));       // null after a write
  EXPECT_FALSE(session.admissible(3, WriteId{1, 4}));   // same-writer regression
  EXPECT_TRUE(session.admissible(3, WriteId{1, 5}));    // read-your-write
  EXPECT_TRUE(session.admissible(3, WriteId{1, 9}));    // anything newer
  // A different writer's clock is incomparable — concurrent writes must
  // not be rejected (the cut is the sound same-writer fragment only).
  EXPECT_TRUE(session.admissible(3, WriteId{2, 1}));
  // Other variables are untouched.
  EXPECT_TRUE(session.admissible(4, WriteId{}));
}

TEST(Session, GetRaisesTheCutMonotonically) {
  kv::Session session(0, 0);
  session.note_get(3, WriteId{2, 7});
  EXPECT_FALSE(session.admissible(3, WriteId{2, 6}));
  EXPECT_TRUE(session.admissible(3, WriteId{2, 7}));
  session.note_get(3, WriteId{2, 9});
  EXPECT_FALSE(session.admissible(3, WriteId{2, 8}));   // monotonic reads
  session.note_get(3, WriteId{2, 8});                   // lower note is a no-op
  EXPECT_FALSE(session.admissible(3, WriteId{2, 8}));
  // Observing null at ⊥ raises nothing.
  session.note_get(5, WriteId{});
  EXPECT_TRUE(session.admissible(5, WriteId{}));
}

TEST(Session, TracksWritersIndependently) {
  kv::Session session(0, 0);
  session.note_put(0, WriteId{1, 3});
  session.note_get(0, WriteId{2, 8});
  EXPECT_FALSE(session.admissible(0, WriteId{1, 2}));
  EXPECT_FALSE(session.admissible(0, WriteId{2, 7}));
  EXPECT_TRUE(session.admissible(0, WriteId{1, 3}));
  EXPECT_TRUE(session.admissible(0, WriteId{2, 8}));
  EXPECT_TRUE(session.admissible(0, WriteId{3, 1}));
}

// ---------------------------------------------------------------------------
// Conformance matrix

const std::vector<causal::ProtocolKind> kProtocols = {
    causal::ProtocolKind::kFullTrack, causal::ProtocolKind::kOptP,
    causal::ProtocolKind::kOptTrack, causal::ProtocolKind::kOptTrackCrp};

kv::ServiceParams matrix_params(causal::ProtocolKind protocol,
                                kv::Substrate substrate, double drop_rate,
                                std::uint64_t seed) {
  kv::ServiceParams params;
  params.engine.sites = 4;
  params.engine.variables = 12;
  params.engine.replication =
      causal::requires_full_replication(protocol) ? 0 : 2;
  params.engine.protocol = protocol;
  if (drop_rate > 0.0) {
    params.engine.fault_plan = faults::FaultPlan::uniform_drop(drop_rate);
    if (substrate != kv::Substrate::kSim) {
      // The thread substrates run retransmission timers on the wall
      // clock, and the service lanes zero out the artificial wire delay —
      // the 400 ms wide-area default RTO would dominate the whole run.
      // Scale it to the actual (loopback) wire.
      params.engine.reliable_config.rto_initial = 5 * kMillisecond;
      params.engine.reliable_config.rto_min = 5 * kMillisecond;
    }
  }
  params.substrate = substrate;
  params.workers = substrate == kv::Substrate::kPooled ? 3 : 0;
  params.store.map = kv::KeyMap(12);
  params.workload.keys = 4000;
  params.workload.zipf_s = 0.99;
  params.workload.rate_ops_per_sec = 50.0;
  params.workload.ops_per_site = 40;
  params.workload.sessions_per_site = 2;
  params.workload.payload_lo = 8;
  params.workload.payload_hi = 64;
  params.workload.seed = seed;
  params.check = true;
  return params;
}

void expect_conformant(const kv::ServiceResult& r, const kv::ServiceParams& p,
                       const std::string& what) {
  EXPECT_TRUE(r.check_ok) << what << ": causal checker failed: "
                          << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_EQ(r.sessions.violations, 0u) << what;
  // Every schedule slot was served through a session, exactly once.
  EXPECT_EQ(r.sessions.puts + r.sessions.gets, r.ops) << what;
  EXPECT_EQ(r.session_count,
            static_cast<std::uint64_t>(p.engine.sites) *
                p.workload.sessions_per_site)
      << what;
  // Recorded latency samples cover exactly the post-warm-up slots.
  EXPECT_EQ(r.get_latency_us.count() + r.put_latency_us.count(),
            r.recorded_ops)
      << what;
  // With enforcement on, every stale observation was retried.
  EXPECT_EQ(r.sessions.retries, r.sessions.stale_observations) << what;
  EXPECT_GT(r.sustained_ops_per_sec, 0.0) << what;
}

void run_matrix(kv::Substrate substrate, const std::vector<double>& rates,
                int seeds) {
  for (const causal::ProtocolKind protocol : kProtocols) {
    for (const double rate : rates) {
      for (int s = 1; s <= seeds; ++s) {
        const kv::ServiceParams params =
            matrix_params(protocol, substrate, rate, static_cast<std::uint64_t>(s));
        const kv::ServiceResult r = kv::run_service(params);
        std::ostringstream what;
        what << causal::to_string(protocol) << " on " << kv::to_string(substrate)
             << " drop " << rate << " seed " << s;
        expect_conformant(r, params, what.str());
        if (rate > 0.0) {
          EXPECT_GT(r.drops, 0u) << what.str() << ": fault plan inert";
        }
      }
    }
  }
}

TEST(KvConformance, MatrixSim) { run_matrix(kv::Substrate::kSim, {0.0, 0.1, 0.3}, seed_count()); }

TEST(KvConformance, MatrixThread) { run_matrix(kv::Substrate::kThread, {0.0, 0.3}, 1); }

TEST(KvConformance, MatrixPooled) { run_matrix(kv::Substrate::kPooled, {0.0, 0.3}, 1); }

TEST(KvConformance, FlashCrowdServesEveryProtocol) {
  for (const causal::ProtocolKind protocol : kProtocols) {
    kv::ServiceParams params = matrix_params(protocol, kv::Substrate::kSim, 0.0, 7);
    params.workload.flash = true;
    const kv::ServiceResult r = kv::run_service(params);
    expect_conformant(r, params, std::string(causal::to_string(protocol)) + " flash");
  }
}

// ---------------------------------------------------------------------------
// Staleness A/B: the cut must catch real staleness, and enforcement must
// repair it. causal_fetch off + partial replication means a RemoteFetch
// can be answered by a replica that has not yet applied a write the
// session already issued or observed — the classic read-your-writes gap.

kv::ServiceParams staleness_params(bool enforce, std::uint64_t seed) {
  kv::ServiceParams params;
  params.engine.sites = 6;
  params.engine.variables = 4;  // few variables -> hot conflicts
  params.engine.replication = 2;
  params.engine.protocol = causal::ProtocolKind::kOptTrack;
  params.engine.causal_fetch = false;
  params.substrate = kv::Substrate::kSim;
  params.store.map = kv::KeyMap(4);
  params.store.enforce = enforce;
  params.workload.keys = 64;
  params.workload.zipf_s = 1.2;  // hammer the hot keys
  params.workload.rate_ops_per_sec = 200.0;  // faster than the wire RTT
  params.workload.ops_per_site = 60;
  params.workload.sessions_per_site = 1;
  params.workload.warmup_fraction = 0.0;
  params.workload.seed = seed;
  params.check = true;
  return params;
}

TEST(KvStaleness, EnforcementConvertsStaleReadsIntoRetries) {
  // Seed-search for a run where the cut actually fires (staleness is a
  // race between the fetch and the SM; not every seed exhibits it).
  std::uint64_t hit = 0;
  kv::ServiceResult unenforced;
  for (std::uint64_t seed = 1; seed <= 50 && hit == 0; ++seed) {
    const kv::ServiceResult r = kv::run_service(staleness_params(false, seed));
    ASSERT_TRUE(r.check_ok) << "seed " << seed;
    if (r.sessions.stale_observations > 0) {
      hit = seed;
      unenforced = r;
    }
  }
  ASSERT_NE(hit, 0u) << "no seed in 1..50 produced a stale read; the "
                        "admissibility oracle may have gone inert";
  // Measurement mode: staleness is counted but never retried, and a
  // stale result the store was told not to repair is not a violation —
  // `violations` means "enforcement failed", which never happens when
  // enforcement is off.
  EXPECT_EQ(unenforced.sessions.retries, 0u);
  EXPECT_EQ(unenforced.sessions.violations, 0u);

  // Same seed, enforcement on: every stale observation becomes a retry
  // and the guarantees hold.
  const kv::ServiceResult enforced = kv::run_service(staleness_params(true, hit));
  EXPECT_TRUE(enforced.check_ok);
  EXPECT_GT(enforced.sessions.stale_observations, 0u);
  EXPECT_EQ(enforced.sessions.retries, enforced.sessions.stale_observations);
  EXPECT_EQ(enforced.sessions.violations, 0u);
}

// ---------------------------------------------------------------------------
// DES determinism: the byte-for-byte contract the CI baseline gate
// depends on.

TEST(KvDeterminism, ServiceBlockIsByteIdenticalAcrossRuns) {
  for (const bool flash : {false, true}) {
    kv::ServiceParams params =
        matrix_params(causal::ProtocolKind::kOptTrack, kv::Substrate::kSim, 0.0, 11);
    params.workload.flash = flash;
    const kv::ServiceResult a = kv::run_service(params);
    const kv::ServiceResult b = kv::run_service(params);
    EXPECT_EQ(kv::service_block_json(params, a), kv::service_block_json(params, b))
        << "flash=" << flash;
  }
}

TEST(KvDeterminism, SeedChangesTheRun) {
  const kv::ServiceParams a_params =
      matrix_params(causal::ProtocolKind::kOptTrack, kv::Substrate::kSim, 0.0, 1);
  const kv::ServiceParams b_params =
      matrix_params(causal::ProtocolKind::kOptTrack, kv::Substrate::kSim, 0.0, 2);
  const kv::ServiceResult a = kv::run_service(a_params);
  const kv::ServiceResult b = kv::run_service(b_params);
  EXPECT_NE(kv::service_block_json(a_params, a), kv::service_block_json(b_params, b));
}

}  // namespace
}  // namespace causim
