// Integration tests for the DES cluster: end-to-end schedule execution,
// quiescence invariants, convergence, and exact message-count identities.
#include <gtest/gtest.h>

#include "dsm/cluster.hpp"
#include "workload/schedule.hpp"

namespace causim::dsm {
namespace {

ClusterConfig small_config(causal::ProtocolKind kind, SiteId n, SiteId p,
                           std::uint64_t seed) {
  ClusterConfig c;
  c.sites = n;
  c.variables = 20;
  c.replication = p;
  c.protocol = kind;
  c.seed = seed;
  return c;
}

workload::Schedule small_schedule(SiteId n, double wrate, std::uint64_t seed,
                                  std::size_t ops = 80) {
  workload::WorkloadParams params;
  params.variables = 20;
  params.write_rate = wrate;
  params.ops_per_site = ops;
  params.seed = seed;
  return workload::generate_schedule(n, params);
}

TEST(Cluster, HandDrivenWriteReadAcrossSites) {
  Cluster cluster(small_config(causal::ProtocolKind::kOptTrack, 4, 2, 3));
  // Find a variable not replicated at site 3 to force a remote fetch.
  VarId remote_var = kInvalidVar;
  for (VarId v = 0; v < 20; ++v) {
    if (!cluster.placement().replicated_at(v, 3)) {
      remote_var = v;
      break;
    }
  }
  ASSERT_NE(remote_var, kInvalidVar);

  const WriteId w = cluster.site(0).write(remote_var, 64);
  cluster.settle();

  bool completed = false;
  const bool inline_done = cluster.site(3).read(remote_var, [&](Value v, WriteId from) {
    completed = true;
    EXPECT_EQ(from, w);
    EXPECT_EQ(v.payload_bytes, 64u);
  });
  EXPECT_FALSE(inline_done);  // must go remote
  EXPECT_TRUE(cluster.site(3).fetch_pending());
  cluster.settle();
  EXPECT_TRUE(completed);
  EXPECT_FALSE(cluster.site(3).fetch_pending());
  EXPECT_TRUE(cluster.check().ok());

  const auto stats = cluster.aggregate_message_stats();
  EXPECT_EQ(stats.of(MessageKind::kFM).count, 1u);
  EXPECT_EQ(stats.of(MessageKind::kRM).count, 1u);
  EXPECT_GE(stats.of(MessageKind::kSM).count, 1u);
  EXPECT_GT(cluster.aggregate_fetch_latency().count(), 0u);
}

TEST(Cluster, ReadOfUnwrittenVariableReturnsBottom) {
  Cluster cluster(small_config(causal::ProtocolKind::kFullTrack, 3, 3, 1));
  bool completed = false;
  cluster.site(1).read(5, [&](Value v, WriteId w) {
    completed = true;
    EXPECT_TRUE(is_bottom(v));
    EXPECT_TRUE(is_null(w));
  });
  cluster.settle();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(cluster.check().ok());
}

TEST(Cluster, ExactMessageCountIdentity) {
  // SM count = Σ over recorded writes of (p − [writer replicates var]);
  // FM = RM = number of recorded reads of non-local variables.
  const SiteId n = 6;
  const SiteId p = 2;
  const auto schedule = small_schedule(n, 0.5, 17);
  Cluster cluster(small_config(causal::ProtocolKind::kOptTrack, n, p, 17));
  cluster.execute(schedule);

  std::uint64_t expected_sm = 0, expected_fm = 0;
  for (SiteId s = 0; s < n; ++s) {
    for (const auto& op : schedule.per_site[s]) {
      if (!op.record) continue;
      const bool local = cluster.placement().replicated_at(op.var, s);
      if (op.kind == workload::Op::Kind::kWrite) {
        expected_sm += p - (local ? 1 : 0);
      } else if (!local) {
        ++expected_fm;
      }
    }
  }
  const auto stats = cluster.aggregate_message_stats();
  EXPECT_EQ(stats.of(MessageKind::kSM).count, expected_sm);
  EXPECT_EQ(stats.of(MessageKind::kFM).count, expected_fm);
  EXPECT_EQ(stats.of(MessageKind::kRM).count, expected_fm);
}

TEST(Cluster, FullReplicationSendsNMinusOnePerWrite) {
  const SiteId n = 5;
  const auto schedule = small_schedule(n, 0.5, 23);
  Cluster cluster(small_config(causal::ProtocolKind::kOptTrackCrp, n, 0, 23));
  cluster.execute(schedule);
  const auto stats = cluster.aggregate_message_stats();
  EXPECT_EQ(stats.of(MessageKind::kSM).count, schedule.recorded_writes() * (n - 1));
  EXPECT_EQ(stats.of(MessageKind::kFM).count, 0u);
  EXPECT_EQ(stats.of(MessageKind::kRM).count, 0u);
}

TEST(Cluster, ReplicasConvergeAtQuiescence) {
  // After the network drains, all replicas of every variable hold the same
  // (single) latest value per the per-variable apply order… note: replicas
  // may legitimately disagree on which *concurrent* write is "latest".
  // What must hold: every replica's value id corresponds to a write that
  // was applied at that replica, and the per-writer apply clocks agree.
  const SiteId n = 5;
  Cluster cluster(small_config(causal::ProtocolKind::kOptTrack, n, 2, 9));
  cluster.execute(small_schedule(n, 0.6, 9));
  EXPECT_TRUE(cluster.check().ok());
  // Spot-check: local_value of a replicated var is never a value of a
  // different variable (value ids are globally unique per write).
  for (VarId v = 0; v < 20; ++v) {
    cluster.placement().replicas(v).for_each([&](SiteId s) {
      const auto [value, w] = cluster.site(s).local_value(v);
      if (!is_null(w)) {
        EXPECT_FALSE(is_bottom(value));
      }
    });
  }
}

TEST(Cluster, WarmupMessagesAreNotRecorded) {
  const SiteId n = 4;
  // All ops are warm-up: zero recorded messages, though traffic flowed.
  workload::WorkloadParams params;
  params.variables = 20;
  params.write_rate = 1.0;
  params.ops_per_site = 20;
  params.warmup_fraction = 1.0;
  params.seed = 5;
  Cluster cluster(small_config(causal::ProtocolKind::kOptTrack, n, 2, 5));
  cluster.execute(workload::generate_schedule(n, params));
  EXPECT_EQ(cluster.aggregate_message_stats().total().count, 0u);
  EXPECT_GT(cluster.transport().packets_sent(), 0u);
}

TEST(Cluster, PayloadBytesAccounted) {
  Cluster cluster(small_config(causal::ProtocolKind::kOptTrackCrp, 3, 0, 2));
  cluster.site(0).write(0, 1000);
  cluster.settle();
  const auto stats = cluster.aggregate_message_stats();
  EXPECT_EQ(stats.of(MessageKind::kSM).count, 2u);
  EXPECT_EQ(stats.of(MessageKind::kSM).payload_bytes, 2000u);
  EXPECT_GT(stats.of(MessageKind::kSM).meta_bytes, 0u);
}

TEST(Cluster, ApplyDelayInstrumentationRecordsWaits) {
  // Under →-tracking (Full-Track-HB) with wide latencies, some updates
  // must sit in the pending queue; the delay summary captures them.
  ClusterConfig config = small_config(causal::ProtocolKind::kFullTrackHb, 6, 2, 4);
  config.latency_lo = 1 * kMillisecond;
  config.latency_hi = 2000 * kMillisecond;
  Cluster cluster(config);
  cluster.execute(small_schedule(6, 0.6, 4, 120));
  EXPECT_GT(cluster.total_applies(), 0u);
  EXPECT_GT(cluster.aggregate_apply_delay().count(), 0u);
  EXPECT_GT(cluster.aggregate_apply_delay().mean(), 0.0);
}

TEST(ClusterDeathTest, FullReplicationProtocolRejectsPartialPlacement) {
  EXPECT_DEATH(Cluster(small_config(causal::ProtocolKind::kOptP, 4, 2, 1)),
               "full replication");
}

TEST(ClusterDeathTest, ScheduleSizeMismatchPanics) {
  Cluster cluster(small_config(causal::ProtocolKind::kOptTrack, 4, 2, 1));
  const auto schedule = small_schedule(6, 0.5, 1, 10);  // six sites, cluster has four
  EXPECT_DEATH(cluster.execute(schedule), "schedule built for");
}

TEST(ClusterDeathTest, SecondOpDuringFetchPanics) {
  Cluster cluster(small_config(causal::ProtocolKind::kOptTrack, 4, 2, 3));
  VarId remote_var = 0;
  for (VarId v = 0; v < 20; ++v) {
    if (!cluster.placement().replicated_at(v, 3)) {
      remote_var = v;
      break;
    }
  }
  cluster.site(3).read(remote_var, {});
  EXPECT_DEATH(cluster.site(3).write(0, 0), "outstanding");
}

}  // namespace
}  // namespace causim::dsm
