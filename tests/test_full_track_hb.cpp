// Unit tests for FullTrackHb — the →-tracking (false-causality) variant.
#include <gtest/gtest.h>

#include "bench_support/experiment.hpp"
#include "causal/full_track_hb.hpp"

namespace causim::causal {
namespace {

constexpr SiteId kN = 4;

serial::Bytes write_at(FullTrack& p, VarId var, const DestSet& dests, WriteId* id) {
  serial::ByteWriter meta;
  *id = p.local_write(var, Value{1, 0}, dests, meta);
  return meta.take();
}

std::unique_ptr<PendingUpdate> make_pending(FullTrack& receiver, SiteId sender, VarId var,
                                            const WriteId& id, const DestSet& dests,
                                            const serial::Bytes& meta) {
  serial::ByteReader r(meta);
  return receiver.decode_sm(SmEnvelope{sender, var, Value{1, 0}, id}, dests, r);
}

TEST(FullTrackHb, ReceiptAloneCreatesDependency) {
  // The defining difference from Full-Track: s1 applies x but never reads
  // it; its next write y still depends on x under → tracking.
  const DestSet dx(kN, {0, 1, 2});
  const DestSet dy(kN, {1, 2});
  FullTrackHb s0(0, kN), s1(1, kN), s2(2, kN);
  WriteId wx, wy;
  const auto mx = write_at(s0, 0, dx, &wx);
  const auto px = make_pending(s1, 0, 0, wx, dx, mx);
  ASSERT_TRUE(s1.ready(*px));
  s1.apply(*px);  // no read!

  const auto my = write_at(s1, 1, dy, &wy);
  const auto py = make_pending(s2, 1, 1, wy, dy, my);
  EXPECT_FALSE(s2.ready(*py)) << "→ tracking must impose the false dependency";

  const auto px2 = make_pending(s2, 0, 0, wx, dx, mx);
  s2.apply(*px2);
  EXPECT_TRUE(s2.ready(*py));
  s2.apply(*py);
}

TEST(FullTrackHb, StillSafeOnPropertyGrid) {
  // Stronger-than-causal ordering is still causal: the checker must pass.
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    bench_support::ExperimentParams params;
    params.protocol = ProtocolKind::kFullTrackHb;
    params.sites = 8;
    params.replication = 3;
    params.write_rate = 0.5;
    params.ops_per_site = 120;
    params.seeds = {seed};
    params.check = true;
    const auto r = bench_support::run_experiment(params);
    EXPECT_TRUE(r.check_ok) << (r.violations.empty() ? "" : r.violations.front());
  }
}

TEST(FullTrackHb, SameMessageSizesAsFullTrack) {
  // Identical wire format — only the merge point differs.
  bench_support::ExperimentParams params;
  params.sites = 6;
  params.replication = 2;
  params.write_rate = 0.5;
  params.ops_per_site = 100;
  params.seeds = {4};

  params.protocol = ProtocolKind::kFullTrack;
  const auto ft = bench_support::run_experiment(params);
  params.protocol = ProtocolKind::kFullTrackHb;
  const auto hb = bench_support::run_experiment(params);
  EXPECT_EQ(ft.stats.total().count, hb.stats.total().count);
  EXPECT_EQ(ft.stats.total().meta_bytes, hb.stats.total().meta_bytes);
}

}  // namespace
}  // namespace causim::causal
