// Tests for causim::obs::analysis provenance — the per-operation causal
// dependency DAGs and critical-path decomposition behind `causim-trace
// explain` / `causim-trace critpath`.
//
//  - A handcrafted 3-site trace with a known dependency chain must yield
//    the exact segment durations, the exact DAG shape (blocker chain,
//    resolved predecessors), and byte-identical report JSON.
//  - On real cluster runs of all four protocols every activated op's
//    segments must sum to its measured visibility latency, every buffered
//    op's kDepSatisfied chain must tile [receipt, apply) exactly, and the
//    analyzer must close every chain (unresolved == 0, sum_mismatch == 0).
//  - The live critpath instrument (obs::live) is the streaming fold of the
//    same decomposition: replaying the recorded trace into a fresh
//    instance must reproduce the online summary exactly, and its totals
//    must agree with the offline provenance report.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "bench_support/experiment.hpp"
#include "dsm/cluster.hpp"
#include "obs/analysis/provenance.hpp"
#include "obs/live/live_telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "workload/schedule.hpp"

namespace causim {
namespace {

using obs::TraceEvent;
using obs::TraceEventType;
using obs::analysis::OpRecord;
using obs::analysis::ProvenanceReport;
using obs::analysis::analyze_provenance;

TraceEvent ev(TraceEventType type, SiteId site, SiteId peer, SimTime ts,
              SimTime dur = 0, std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t c = 0, std::uint64_t d = 0) {
  TraceEvent e;
  e.type = type;
  e.kind = MessageKind::kSM;
  e.site = site;
  e.peer = peer;
  e.ts = ts;
  e.dur = dur;
  e.a = a;
  e.b = b;
  e.c = c;
  e.d = d;
  return e;
}

// Three sites, three writes, one known chain. Write A = 0:1 (var 7) reaches
// site 2 at t=500 but must wait for two predecessors from site 1: first the
// ordinal blocker "writer 1 apply #1" (Full-Track style), resolved by B1 =
// 1:1 applying at 600, then the concrete write 1:2 (B2), applying at 750.
//
//   A:  issue 90, send 100, wire 400 -> recv 500, apply 750
//       sched 10 | wire 400 | arq 0 | dep_wait 250 (100 on B1 + 150 on B2)
//   B1: issue 40, send 50, wire 550 -> applied on arrival at 600
//   B2: issue 60, send 70, wire 680 -> applied on arrival at 750
std::vector<TraceEvent> known_chain_trace() {
  using obs::pack_blocking_dep;
  using obs::pack_write_id;
  const std::uint64_t a = pack_write_id({0, 1});
  const std::uint64_t b1 = pack_write_id({1, 1});
  const std::uint64_t b2 = pack_write_id({1, 2});

  std::vector<TraceEvent> t;
  t.push_back(ev(TraceEventType::kOpIssue, 1, kInvalidSite, 40, 0, 7, 1));
  t.push_back(ev(TraceEventType::kSend, 1, 2, 50, 0, 7, 64, b1));
  t.push_back(ev(TraceEventType::kWireDelay, 1, 2, 50, 550, 0, 64));
  t.push_back(ev(TraceEventType::kOpIssue, 1, kInvalidSite, 60, 0, 8, 1));
  t.push_back(ev(TraceEventType::kSend, 1, 2, 70, 0, 8, 64, b2));
  t.push_back(ev(TraceEventType::kWireDelay, 1, 2, 70, 680, 0, 64));
  t.push_back(ev(TraceEventType::kOpIssue, 0, kInvalidSite, 90, 0, 7, 1));
  t.push_back(ev(TraceEventType::kSend, 0, 2, 100, 0, 7, 64, a));
  t.push_back(ev(TraceEventType::kWireDelay, 0, 2, 100, 400, 0, 64));
  t.push_back(ev(TraceEventType::kDeliver, 2, 0, 500, 0, 0, 64));
  t.push_back(ev(TraceEventType::kBuffered, 2, 0, 500, 0, 7, 1, a,
                 pack_blocking_dep(1, 1, true)));
  // B1 applies on arrival; the runtime emits the resolving kActivated
  // before the kDepSatisfied it unblocks (the ordinal join relies on it).
  t.push_back(ev(TraceEventType::kActivated, 2, 1, 600, 0, 7, 0, b1));
  t.push_back(ev(TraceEventType::kDepSatisfied, 2, 0, 500, 100, 7, a,
                 pack_blocking_dep(1, 1, true), b2));
  t.push_back(ev(TraceEventType::kActivated, 2, 1, 750, 0, 8, 0, b2));
  t.push_back(ev(TraceEventType::kDepSatisfied, 2, 0, 600, 150, 7, a,
                 pack_blocking_dep(1, 2, false), 0));
  t.push_back(ev(TraceEventType::kActivated, 2, 0, 500, 250, 7, 1, a));
  return t;
}

TEST(Provenance, KnownChainSegmentsAndDagShape) {
  const ProvenanceReport report = analyze_provenance(known_chain_trace());

  EXPECT_EQ(report.sites, 3);
  EXPECT_EQ(report.epochs, 1u);
  EXPECT_EQ(report.sm_sends, 3u);
  EXPECT_EQ(report.activated, 3u);
  EXPECT_EQ(report.buffered, 1u);
  EXPECT_EQ(report.unmatched_sends, 0u);
  EXPECT_EQ(report.unresolved, 0u);
  EXPECT_EQ(report.sum_mismatch, 0u);

  const OpRecord* a = report.find_op({0, 1}, 2);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->t_issue, 90);
  EXPECT_EQ(a->t_send, 100);
  EXPECT_EQ(a->t_recv, 500);
  EXPECT_EQ(a->t_apply, 750);
  EXPECT_EQ(a->sched, 10);
  EXPECT_EQ(a->wire, 400);
  EXPECT_EQ(a->arq, 0);
  EXPECT_EQ(a->dep_wait, 250);
  EXPECT_EQ(a->apply, 0);
  EXPECT_EQ(a->visibility(), 650);
  EXPECT_TRUE(a->buffered);
  EXPECT_EQ(a->wire + a->arq + a->dep_wait + a->apply, a->visibility());

  // The chain: first the ordinal blocker (resolved to B1 through the
  // per-destination apply list), then the concrete write 1:2.
  ASSERT_EQ(a->segments.size(), 2u);
  EXPECT_EQ(a->segments[0].since, 500);
  EXPECT_EQ(a->segments[0].wait, 100);
  EXPECT_EQ(a->segments[0].blocker_wid, obs::pack_write_id({1, 1}));
  EXPECT_EQ(a->segments[1].since, 600);
  EXPECT_EQ(a->segments[1].wait, 150);
  EXPECT_EQ(a->segments[1].blocker_wid, obs::pack_write_id({1, 2}));

  const OpRecord* pred1 = report.predecessor(*a, a->segments[0]);
  ASSERT_NE(pred1, nullptr);
  EXPECT_EQ(pred1->write, (WriteId{1, 1}));
  EXPECT_EQ(pred1->visibility(), 550);
  const OpRecord* pred2 = report.predecessor(*a, a->segments[1]);
  ASSERT_NE(pred2, nullptr);
  EXPECT_EQ(pred2->write, (WriteId{1, 2}));
  EXPECT_EQ(pred2->visibility(), 680);

  // Worst-first ordering: B2 (680) > A (650) > B1 (550).
  ASSERT_EQ(report.top_ops.size(), 3u);
  EXPECT_EQ(report.ops[report.top_ops[0]].write, (WriteId{1, 2}));
  EXPECT_EQ(report.ops[report.top_ops[1]].write, (WriteId{0, 1}));
  EXPECT_EQ(report.ops[report.top_ops[2]].write, (WriteId{1, 1}));
  EXPECT_EQ(report.worst_op()->write, (WriteId{1, 2}));

  // Every microsecond of dependency wait is attributed to writer 1.
  ASSERT_EQ(report.blocked_on_writer.size(), 1u);
  const auto& blocked = report.blocked_on_writer.at(1);
  EXPECT_EQ(blocked.segments, 2u);
  EXPECT_DOUBLE_EQ(blocked.wait_us, 250.0);
}

TEST(Provenance, KnownChainReportJsonIsByteIdentical) {
  const std::vector<TraceEvent> trace = known_chain_trace();
  std::ostringstream first, second;
  analyze_provenance(trace).write_json(first);
  analyze_provenance(trace).write_json(second);
  EXPECT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
  EXPECT_NE(first.str().find("\"schema\": \"causim.provenance.v1\""),
            std::string::npos);
}

TEST(Provenance, ExplainRendersChainAndCriticalPath) {
  const ProvenanceReport report = analyze_provenance(known_chain_trace());
  std::ostringstream out;
  ASSERT_TRUE(report.write_explain(out, {0, 1}, SiteId{2}));
  const std::string text = out.str();
  EXPECT_NE(text.find("write 0:1"), std::string::npos);
  EXPECT_NE(text.find("visibility 650 us"), std::string::npos);
  EXPECT_NE(text.find("blocked on writer 1 apply #1 -> write 1:1"),
            std::string::npos);
  EXPECT_NE(text.find("blocked on write 1:2"), std::string::npos);
  // The critical path recurses into the predecessor that resolved last.
  EXPECT_NE(text.find("gated 150 us by:"), std::string::npos);
  EXPECT_NE(text.find("write 1:2 (var 8)"), std::string::npos);
  // An absent write is reported, not invented.
  std::ostringstream none;
  EXPECT_FALSE(report.write_explain(none, {5, 9}));
}

TEST(Provenance, ConcatenatedRunsSplitIntoEpochs) {
  // Multi-seed cells append several runs into one sink; the emission clock
  // jumping backwards marks the boundary. Same-id writes in different
  // epochs must not be joined.
  std::vector<TraceEvent> twice = known_chain_trace();
  const std::vector<TraceEvent> again = known_chain_trace();
  twice.insert(twice.end(), again.begin(), again.end());

  const ProvenanceReport report = analyze_provenance(twice);
  EXPECT_EQ(report.epochs, 2u);
  EXPECT_EQ(report.sm_sends, 6u);
  EXPECT_EQ(report.activated, 6u);
  EXPECT_EQ(report.buffered, 2u);
  EXPECT_EQ(report.unresolved, 0u);
  EXPECT_EQ(report.sum_mismatch, 0u);
  // Both copies of A resolve inside their own epoch.
  const auto deliveries = report.ops_of({0, 1});
  ASSERT_EQ(deliveries.size(), 2u);
  for (const OpRecord* op : deliveries) {
    ASSERT_EQ(op->segments.size(), 2u);
    EXPECT_EQ(op->dep_wait, 250);
  }
}

// -- real cluster runs ------------------------------------------------------

dsm::ClusterConfig wide_latency_config(causal::ProtocolKind kind, SiteId n,
                                       std::uint64_t seed) {
  dsm::ClusterConfig c;
  c.sites = n;
  c.variables = 20;
  c.replication = causal::requires_full_replication(kind)
                      ? 0
                      : bench_support::partial_replication_factor(n);
  c.protocol = kind;
  c.seed = seed;
  // A wide delay spread makes dependency arrivals overtake each other, so
  // a healthy fraction of SMs buffers (same trick as test_cluster.cpp).
  c.latency_lo = 1 * kMillisecond;
  c.latency_hi = 2000 * kMillisecond;
  return c;
}

workload::Schedule wide_latency_schedule(SiteId n, std::uint64_t seed) {
  workload::WorkloadParams params;
  params.variables = 20;
  params.write_rate = 0.6;
  params.ops_per_site = 120;
  params.seed = seed;
  return workload::generate_schedule(n, params);
}

class ProvenanceAllProtocols : public ::testing::TestWithParam<causal::ProtocolKind> {};

// The acceptance invariant of the subsystem: for every activated SM the
// reconstructed segments sum to the measured visibility latency, and every
// buffered SM's blocker chain tiles [receipt, apply) exactly — no
// microsecond is unattributed, none is counted twice.
TEST_P(ProvenanceAllProtocols, SegmentsSumToVisibilityOnRealRuns) {
  const auto kind = GetParam();
  const SiteId n = 6;
  obs::RingBufferSink sink;
  dsm::ClusterConfig config = wide_latency_config(kind, n, 7);
  config.trace_sink = &sink;
  dsm::Cluster cluster(config);
  cluster.execute(wide_latency_schedule(n, 7));
  ASSERT_EQ(sink.dropped(), 0u);

  const ProvenanceReport report = analyze_provenance(sink.events());
  ASSERT_GT(report.sm_sends, 0u) << to_string(kind);
  EXPECT_EQ(report.activated, report.sm_sends) << to_string(kind);
  EXPECT_EQ(report.unmatched_sends, 0u) << to_string(kind);
  EXPECT_EQ(report.unresolved, 0u) << to_string(kind);
  EXPECT_EQ(report.sum_mismatch, 0u) << to_string(kind);
  EXPECT_GT(report.buffered, 0u) << to_string(kind);
  EXPECT_EQ(report.epochs, 1u);

  for (const OpRecord& op : report.ops) {
    ASSERT_TRUE(op.activated);
    EXPECT_EQ(op.wire + op.arq + op.dep_wait + op.apply, op.visibility());
    // Clean wire, instantaneous applies: the transit is all first-hop
    // delay and the residual segments are exactly zero.
    EXPECT_EQ(op.wire, op.t_recv - op.t_send);
    EXPECT_EQ(op.arq, 0);
    EXPECT_EQ(op.apply, 0);
    if (op.buffered) {
      ASSERT_FALSE(op.segments.empty());
      EXPECT_EQ(op.segments.front().since, op.t_recv);
      SimTime tiled = 0;
      SimTime cursor = op.t_recv;
      for (const auto& s : op.segments) {
        EXPECT_EQ(s.since, cursor);  // segments are contiguous
        cursor = s.since + s.wait;
        tiled += s.wait;
      }
      EXPECT_EQ(tiled, op.dep_wait);
      EXPECT_EQ(cursor, op.t_apply);
    } else {
      EXPECT_TRUE(op.segments.empty());
      EXPECT_EQ(op.dep_wait, 0);
    }
  }
}

// Identical (schedule, seed) runs must serialize byte-identical provenance
// reports — the same determinism contract the raw trace already has.
TEST_P(ProvenanceAllProtocols, ReportIsDeterministicAcrossRuns) {
  const auto kind = GetParam();
  const SiteId n = 5;
  std::string reports[2];
  for (std::string& r : reports) {
    obs::RingBufferSink sink;
    dsm::ClusterConfig config = wide_latency_config(kind, n, 9);
    config.trace_sink = &sink;
    dsm::Cluster cluster(config);
    cluster.execute(wide_latency_schedule(n, 9));
    ASSERT_EQ(sink.dropped(), 0u);
    std::ostringstream out;
    analyze_provenance(sink.events()).write_json(out);
    r = out.str();
  }
  EXPECT_FALSE(reports[0].empty());
  EXPECT_EQ(reports[0], reports[1]);
}

// The live critpath instrument is the bounded-memory streaming fold of the
// same decomposition. Replaying the recorded trace into a fresh instance
// must reproduce the online digest exactly, and its totals must agree with
// the offline provenance report on every shared quantity.
TEST_P(ProvenanceAllProtocols, LiveCritpathMatchesReplayAndOfflineReport) {
  const auto kind = GetParam();
  const SiteId n = 6;
  dsm::ClusterConfig config = wide_latency_config(kind, n, 7);

  obs::live::LiveConfig lc;
  lc.sites = config.sites;
  lc.variables = config.variables;
  lc.critpath = true;
  obs::live::LiveTelemetry online(lc);
  online.begin_run(7);
  obs::RingBufferSink ring;
  config.live = &online;
  config.trace_sink = &ring;  // the live layer interposes and forwards
  dsm::Cluster cluster(config);
  cluster.execute(wide_latency_schedule(n, 7));
  ASSERT_EQ(ring.dropped(), 0u);

  obs::live::LiveTelemetry offline(lc);
  offline.begin_run(7);
  obs::live::replay_events(ring.events(), offline);

  const auto a = online.critpath_summary();
  const auto b = offline.critpath_summary();
  ASSERT_TRUE(a.enabled);
  EXPECT_GT(a.ops, 0u);
  EXPECT_GT(a.dep_segments, 0u) << to_string(kind);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.dep_segments, b.dep_segments);
  EXPECT_EQ(a.dropped_first_tx, b.dropped_first_tx);
  const auto expect_segment_eq = [](const obs::live::CritpathSegment& x,
                                    const obs::live::CritpathSegment& y) {
    EXPECT_EQ(x.count, y.count);
    EXPECT_DOUBLE_EQ(x.total_us, y.total_us);
    EXPECT_DOUBLE_EQ(x.mean_us, y.mean_us);
    EXPECT_DOUBLE_EQ(x.p50_us, y.p50_us);
    EXPECT_DOUBLE_EQ(x.p90_us, y.p90_us);
    EXPECT_DOUBLE_EQ(x.p99_us, y.p99_us);
    EXPECT_DOUBLE_EQ(x.max_us, y.max_us);
  };
  expect_segment_eq(a.wire, b.wire);
  expect_segment_eq(a.arq, b.arq);
  expect_segment_eq(a.dep_wait, b.dep_wait);
  ASSERT_EQ(a.blocked_on_writer_us.size(), b.blocked_on_writer_us.size());
  for (std::size_t i = 0; i < a.blocked_on_writer_us.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.blocked_on_writer_us[i], b.blocked_on_writer_us[i]);
  }
  ASSERT_EQ(a.top_blockers.size(), b.top_blockers.size());
  for (std::size_t i = 0; i < a.top_blockers.size(); ++i) {
    EXPECT_EQ(a.top_blockers[i].writer, b.top_blockers[i].writer);
    EXPECT_EQ(a.top_blockers[i].value, b.top_blockers[i].value);
    EXPECT_EQ(a.top_blockers[i].ordinal, b.top_blockers[i].ordinal);
    EXPECT_EQ(a.top_blockers[i].segments, b.top_blockers[i].segments);
    EXPECT_DOUBLE_EQ(a.top_blockers[i].wait_us, b.top_blockers[i].wait_us);
    EXPECT_DOUBLE_EQ(a.top_blockers[i].error_us, b.top_blockers[i].error_us);
  }

  // Offline report agreement: both paths fold the same events, so every
  // shared total is equal — streaming loses only per-op identity, never
  // mass.
  const ProvenanceReport report = analyze_provenance(ring.events());
  EXPECT_EQ(a.ops, report.activated);
  std::size_t segments = 0;
  for (const OpRecord& op : report.ops) segments += op.segments.size();
  EXPECT_EQ(a.dep_segments, segments);
  EXPECT_EQ(a.wire.count, report.wire.count);
  EXPECT_DOUBLE_EQ(a.wire.total_us, report.wire.total_us);
  EXPECT_EQ(a.arq.count, report.arq.count);
  EXPECT_DOUBLE_EQ(a.arq.total_us, report.arq.total_us);
  EXPECT_EQ(a.dep_wait.count, report.dep_wait.count);
  EXPECT_DOUBLE_EQ(a.dep_wait.total_us, report.dep_wait.total_us);
  for (SiteId w = 0; w < n; ++w) {
    const auto it = report.blocked_on_writer.find(w);
    const double offline_wait =
        it == report.blocked_on_writer.end() ? 0.0 : it->second.wait_us;
    EXPECT_DOUBLE_EQ(a.blocked_on_writer_us[w], offline_wait) << "writer " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ProvenanceAllProtocols,
    ::testing::Values(causal::ProtocolKind::kFullTrack, causal::ProtocolKind::kOptTrack,
                      causal::ProtocolKind::kOptTrackCrp, causal::ProtocolKind::kOptP),
    [](const ::testing::TestParamInfo<causal::ProtocolKind>& param_info) {
      std::string name = to_string(param_info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace causim
