// Unit tests for the Full-Track protocol: matrix maintenance, the
// activation predicate, and merge-on-read (→co) semantics.
#include <gtest/gtest.h>

#include "causal/full_track.hpp"

namespace causim::causal {
namespace {

constexpr SiteId kN = 4;

serial::Bytes write_at(FullTrack& p, VarId var, const DestSet& dests, WriteId* id) {
  serial::ByteWriter meta;
  *id = p.local_write(var, Value{1, 0}, dests, meta);
  return meta.take();
}

std::unique_ptr<PendingUpdate> make_pending(FullTrack& receiver, SiteId sender, VarId var,
                                            const WriteId& id, const DestSet& dests,
                                            const serial::Bytes& meta) {
  serial::ByteReader r(meta);
  return receiver.decode_sm(SmEnvelope{sender, var, Value{1, 0}, id}, dests, r);
}

TEST(FullTrack, WriteIncrementsPerDestinationCounters) {
  FullTrack p(0, kN);
  const DestSet dests(kN, {0, 2});
  WriteId id;
  write_at(p, 5, dests, &id);
  EXPECT_EQ(id, (WriteId{0, 1}));
  EXPECT_EQ(p.write_clock().at(0, 0), 1u);
  EXPECT_EQ(p.write_clock().at(0, 2), 1u);
  EXPECT_EQ(p.write_clock().at(0, 1), 0u);
  EXPECT_EQ(p.applied_count(0), 1u);  // local replica applied immediately
}

TEST(FullTrack, WriteToNonLocalVariableSkipsLocalApply) {
  FullTrack p(0, kN);
  WriteId id;
  write_at(p, 5, DestSet(kN, {1, 2}), &id);
  EXPECT_EQ(p.applied_count(0), 0u);
  EXPECT_EQ(p.write_clock().at(0, 1), 1u);
}

TEST(FullTrack, IndependentWriteIsImmediatelyReady) {
  FullTrack writer(0, kN);
  FullTrack receiver(1, kN);
  const DestSet dests(kN, {0, 1});
  WriteId id;
  const auto meta = write_at(writer, 3, dests, &id);
  const auto pending = make_pending(receiver, 0, 3, id, dests, meta);
  EXPECT_TRUE(receiver.ready(*pending));
  receiver.apply(*pending);
  EXPECT_EQ(receiver.applied_count(0), 1u);
}

TEST(FullTrack, ProgramOrderGatesSecondWrite) {
  FullTrack writer(0, kN);
  FullTrack receiver(1, kN);
  const DestSet dests(kN, {0, 1});
  WriteId id1, id2;
  const auto m1 = write_at(writer, 3, dests, &id1);
  const auto m2 = write_at(writer, 3, dests, &id2);
  const auto p2 = make_pending(receiver, 0, 3, id2, dests, m2);
  EXPECT_FALSE(receiver.ready(*p2));  // w1 not applied yet
  const auto p1 = make_pending(receiver, 0, 3, id1, dests, m1);
  ASSERT_TRUE(receiver.ready(*p1));
  receiver.apply(*p1);
  EXPECT_TRUE(receiver.ready(*p2));
  receiver.apply(*p2);
}

TEST(FullTrack, ReadCreatesCausalDependency) {
  // s0 writes x; s1 applies, READS x, then writes y; s2 must not apply y
  // before x — but only because s1 read x (→co, not mere receipt).
  const DestSet dx(kN, {0, 1, 2});
  const DestSet dy(kN, {1, 2});

  FullTrack s0(0, kN), s1(1, kN), s2(2, kN);
  WriteId wx, wy;
  const auto mx = write_at(s0, 0, dx, &wx);

  const auto px = make_pending(s1, 0, 0, wx, dx, mx);
  ASSERT_TRUE(s1.ready(*px));
  s1.apply(*px);
  s1.local_read(0);  // the →co edge

  const auto my = write_at(s1, 1, dy, &wy);
  const auto py = make_pending(s2, 1, 1, wy, dy, my);
  EXPECT_FALSE(s2.ready(*py)) << "y depends on x via s1's read";

  const auto px2 = make_pending(s2, 0, 0, wx, dx, mx);
  ASSERT_TRUE(s2.ready(*px2));
  s2.apply(*px2);
  EXPECT_TRUE(s2.ready(*py));
}

TEST(FullTrack, WithoutReadNoFalseDependency) {
  // Same as above but s1 does NOT read x before writing y: Full-Track
  // tracks →co, so y must NOT depend on x (this is exactly the false
  // causality the paper's protocols eliminate).
  const DestSet dx(kN, {0, 1, 2});
  const DestSet dy(kN, {1, 2});

  FullTrack s0(0, kN), s1(1, kN), s2(2, kN);
  WriteId wx, wy;
  const auto mx = write_at(s0, 0, dx, &wx);
  const auto px = make_pending(s1, 0, 0, wx, dx, mx);
  s1.apply(*px);  // applied but never read

  const auto my = write_at(s1, 1, dy, &wy);
  const auto py = make_pending(s2, 1, 1, wy, dy, my);
  EXPECT_TRUE(s2.ready(*py)) << "no read-from edge, so no dependency on x";
}

TEST(FullTrack, RemoteReturnCarriesLastWriteOn) {
  FullTrack server(0, kN);
  FullTrack reader(3, kN);
  const DestSet dests(kN, {0, 1});
  WriteId id;
  write_at(server, 7, dests, &id);

  serial::ByteWriter rm;
  server.remote_return_meta(7, rm);
  const serial::Bytes rm_bytes = rm.take();
  serial::ByteReader r(rm_bytes);
  const auto ret = reader.decode_remote_return(r);
  // The write is not destined to the reader (site 3 ∉ {0, 1}), so the
  // return is immediately absorbable.
  ASSERT_TRUE(reader.return_ready(*ret));
  reader.absorb_remote_return(7, *ret);
  EXPECT_EQ(reader.write_clock().at(0, 0), 1u);
  EXPECT_EQ(reader.write_clock().at(0, 1), 1u);
}

TEST(FullTrack, RemoteReturnWaitsForWritesDestinedToReader) {
  // The value's causal past contains a write destined to the reader that
  // the reader has not applied: absorbing now would let the reader's next
  // write apply locally ahead of it. return_ready must gate.
  FullTrack server(0, kN);
  FullTrack reader(1, kN);
  const DestSet dests(kN, {0, 1});
  WriteId id;
  const auto sm = write_at(server, 7, dests, &id);

  serial::ByteWriter rm;
  server.remote_return_meta(7, rm);
  const serial::Bytes rm_bytes = rm.take();
  serial::ByteReader r(rm_bytes);
  const auto ret = reader.decode_remote_return(r);
  EXPECT_FALSE(reader.return_ready(*ret));

  const auto pending = make_pending(reader, 0, 7, id, dests, sm);
  reader.apply(*pending);
  EXPECT_TRUE(reader.return_ready(*ret));
  reader.absorb_remote_return(7, *ret);
}

TEST(FullTrack, RemoteReturnForUnwrittenVariableIsZero) {
  FullTrack server(0, kN);
  FullTrack reader(1, kN);
  serial::ByteWriter rm;
  server.remote_return_meta(9, rm);
  const serial::Bytes rm_bytes = rm.take();
  serial::ByteReader r(rm_bytes);
  const auto ret = reader.decode_remote_return(r);
  ASSERT_TRUE(reader.return_ready(*ret));
  reader.absorb_remote_return(9, *ret);
  EXPECT_EQ(reader.write_clock(), MatrixClock(kN));
}

TEST(FullTrack, SmMetaSizeIsQuadratic) {
  FullTrack p(0, kN);
  WriteId id;
  const auto meta = write_at(p, 0, DestSet::all(kN), &id);
  EXPECT_EQ(meta.size(), MatrixClock::wire_bytes(kN, serial::ClockWidth::k4Bytes));
  EXPECT_EQ(p.log_entry_count(), static_cast<std::size_t>(kN) * kN);
}

TEST(FullTrackDeathTest, ApplyWhenNotReadyPanics) {
  FullTrack writer(0, kN), receiver(1, kN);
  const DestSet dests(kN, {0, 1});
  WriteId id1, id2;
  write_at(writer, 3, dests, &id1);
  const auto m2 = write_at(writer, 3, dests, &id2);
  const auto p2 = make_pending(receiver, 0, 3, id2, dests, m2);
  EXPECT_DEATH(receiver.apply(*p2), "activation predicate");
}

}  // namespace
}  // namespace causim::causal
