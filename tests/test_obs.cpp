// Tests for causim::obs — trace sinks, the metrics registry, the Chrome
// trace export, and the end-to-end properties ISSUE'd with the subsystem:
// two identical-(schedule, seed) DES runs serialize byte-identical traces,
// and ThreadTransport traces respect per-channel FIFO sequencing.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "dsm/cluster.hpp"
#include "dsm/thread_cluster.hpp"
#include "obs/analysis/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/perfetto_export.hpp"
#include "obs/trace_sink.hpp"
#include "workload/schedule.hpp"

namespace causim::obs {
namespace {

TraceEvent event(TraceEventType type, SiteId site, std::uint64_t a) {
  TraceEvent e;
  e.type = type;
  e.site = site;
  e.a = a;
  return e;
}

TEST(RingBufferSink, RecordsInEmitOrder) {
  RingBufferSink sink(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    sink.emit(event(TraceEventType::kSend, 0, i));
  }
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].a, i);
}

TEST(RingBufferSink, DropsNewestWhenFullAndCounts) {
  RingBufferSink sink(2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    sink.emit(event(TraceEventType::kSend, 0, i));
  }
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 3u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  // The exact prefix survives; later events were dropped, not wrapped over.
  EXPECT_EQ(events[0].a, 0u);
  EXPECT_EQ(events[1].a, 1u);
}

TEST(RingBufferSink, ClearForgetsEverything) {
  RingBufferSink sink(2);
  for (int i = 0; i < 4; ++i) sink.emit(event(TraceEventType::kDeliver, 0, 1));
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  sink.emit(event(TraceEventType::kDeliver, 0, 7));
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].a, 7u);
}

TEST(MetricsRegistry, CountersGaugesSummariesHistograms) {
  MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  r.counter("c").add(2);
  r.counter("c").add();
  EXPECT_EQ(r.counter("c").value(), 3u);
  r.gauge("g").set(5.0);
  r.gauge("g").set(2.0);
  EXPECT_DOUBLE_EQ(r.gauge("g").value(), 2.0);
  EXPECT_DOUBLE_EQ(r.gauge("g").high_water(), 5.0);
  r.summary("s").record(1.0);
  r.summary("s").record(3.0);
  EXPECT_DOUBLE_EQ(r.summary("s").mean(), 2.0);
  auto& h = r.histogram("h", 0.0, 10.0, 10);
  h.record(1.5);
  // The config is fixed at first creation: later lookups reuse it.
  EXPECT_EQ(&r.histogram("h", 0.0, 99.0, 3), &h);
  EXPECT_FALSE(r.empty());
}

TEST(MetricsRegistry, MergeSumsCountersMaxesGaugesAccumulatesRest) {
  MetricsRegistry a, b;
  a.counter("c").add(2);
  b.counter("c").add(5);
  a.gauge("g").set(7.0);
  b.gauge("g").set(3.0);
  a.summary("s").record(1.0);
  b.summary("s").record(3.0);
  a.histogram("h", 0.0, 10.0, 10).record(1.0);
  b.histogram("h", 0.0, 10.0, 10).record(2.0);
  b.counter("only_b").add(1);
  a.merge(b);
  EXPECT_EQ(a.counter("c").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g").high_water(), 7.0);
  EXPECT_EQ(a.summary("s").count(), 2u);
  EXPECT_EQ(a.histogram("h", 0.0, 10.0, 10).count(), 2u);
}

TEST(MetricsRegistry, MergePanicsOnMismatchedHistograms) {
  MetricsRegistry a, b;
  a.histogram("h", 0.0, 10.0, 10).record(1.0);
  b.histogram("h", 0.0, 20.0, 10).record(1.0);
  EXPECT_DEATH(a.merge(b), "mismatched configuration");
}

TEST(MetricsRegistry, JsonAndCsvExportsCoverEveryMetric) {
  MetricsRegistry r;
  r.counter("msg.SM.count").add(4);
  r.gauge("queue.depth").set(2.0);
  r.summary("log.entries").record(3.0);
  r.histogram("lat", 0.0, 100.0, 10).record(12.0);

  std::ostringstream json;
  r.write_json(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"msg.SM.count\": 4"), std::string::npos);
  EXPECT_NE(j.find("\"queue.depth\""), std::string::npos);
  EXPECT_NE(j.find("\"log.entries\""), std::string::npos);
  EXPECT_NE(j.find("\"quantiles\""), std::string::npos);

  std::ostringstream csv;
  r.write_csv(csv);
  const std::string c = csv.str();
  EXPECT_NE(c.find("metric,type,field,value"), std::string::npos);
  EXPECT_NE(c.find("msg.SM.count,counter,value,4"), std::string::npos);
  EXPECT_NE(c.find("lat,histogram"), std::string::npos);
}

TEST(MetricsRegistry, HostileMetricNamesSurviveBothExports) {
  // Quotes, a backslash, a comma, and a newline — everything that could
  // corrupt a JSON or CSV export if names were pasted in unescaped.
  const std::string evil = "evil\"name\\with,comma\nand newline";
  MetricsRegistry r;
  r.counter(evil).add(42);

  std::ostringstream json;
  r.write_json(json);
  std::string error;
  const auto doc = analysis::Json::parse(json.str(), &error);
  ASSERT_TRUE(error.empty()) << error << "\n" << json.str();
  EXPECT_DOUBLE_EQ(doc.at("counters").at(evil).number(), 42.0);

  std::ostringstream csv;
  r.write_csv(csv);
  // RFC 4180: the whole field quoted, inner quotes doubled, the newline
  // kept inside the quoted field.
  EXPECT_NE(csv.str().find("\"evil\"\"name\\with,comma\nand newline\",counter,value,42"),
            std::string::npos)
      << csv.str();
}

TEST(ChromeTrace, SpansInstantsAndProcessMetadata) {
  std::vector<TraceEvent> events;
  TraceEvent span = event(TraceEventType::kWireDelay, 1, 0);
  span.peer = 2;
  span.ts = 100;
  span.dur = 50;
  events.push_back(span);
  events.push_back(event(TraceEventType::kSend, 2, 9));

  const std::string json = chrome_trace_string(events);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wire_delay\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"send\""), std::string::npos);
  // Loadable JSON: the object must close.
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json[json.size() - 2], '}');
}

dsm::ClusterConfig small_config(std::uint64_t seed) {
  dsm::ClusterConfig config;
  config.sites = 4;
  config.variables = 20;
  config.replication = 2;
  config.protocol = causal::ProtocolKind::kOptTrack;
  config.seed = seed;
  config.record_history = false;
  return config;
}

workload::Schedule small_schedule(SiteId sites, std::uint64_t seed) {
  workload::WorkloadParams wl;
  wl.variables = 20;
  wl.write_rate = 0.5;
  wl.ops_per_site = 60;
  wl.seed = seed;
  return workload::generate_schedule(sites, wl);
}

std::string traced_run(std::uint64_t seed) {
  RingBufferSink sink;
  dsm::ClusterConfig config = small_config(seed);
  config.trace_sink = &sink;
  dsm::Cluster cluster(config);
  cluster.execute(small_schedule(config.sites, seed));
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_GT(sink.size(), 0u);
  return chrome_trace_string(sink.events());
}

TEST(TraceDeterminism, SameScheduleAndSeedSerializeByteIdentical) {
  const std::string first = traced_run(7);
  const std::string second = traced_run(7);
  EXPECT_EQ(first, second);
  // A different seed is a different execution — the trace must move too,
  // or the equality above would be vacuous.
  EXPECT_NE(first, traced_run(8));
}

TEST(TraceLifecycle, DesRunEmitsTheFullEventTaxonomy) {
  RingBufferSink sink;
  dsm::ClusterConfig config = small_config(3);
  config.trace_sink = &sink;
  dsm::Cluster cluster(config);
  cluster.execute(small_schedule(config.sites, 3));

  std::map<TraceEventType, std::size_t> by_type;
  for (const TraceEvent& e : sink.events()) ++by_type[e.type];
  EXPECT_GT(by_type[TraceEventType::kOpIssue], 0u);
  EXPECT_GT(by_type[TraceEventType::kOpComplete], 0u);
  EXPECT_GT(by_type[TraceEventType::kSend], 0u);
  EXPECT_GT(by_type[TraceEventType::kWireDelay], 0u);
  EXPECT_GT(by_type[TraceEventType::kDeliver], 0u);
  EXPECT_GT(by_type[TraceEventType::kActivated], 0u);
  EXPECT_GT(by_type[TraceEventType::kLogMerge], 0u);
  EXPECT_GT(by_type[TraceEventType::kLogPrune], 0u);
  // Transport conservation, seen through the trace.
  EXPECT_EQ(by_type[TraceEventType::kWireDelay], by_type[TraceEventType::kDeliver]);
  // Every operation completed.
  EXPECT_EQ(by_type[TraceEventType::kOpIssue], by_type[TraceEventType::kOpComplete]);
}

TEST(ClusterMetrics, ExportCoversMessageCountsAndProtocolActivity) {
  dsm::ClusterConfig config = small_config(5);
  dsm::Cluster cluster(config);
  cluster.execute(small_schedule(config.sites, 5));

  MetricsRegistry registry;
  cluster.export_metrics(registry);
  EXPECT_GT(registry.counter("msg.SM.count").value(), 0u);
  EXPECT_GT(registry.counter("msg.FM.count").value(), 0u);
  EXPECT_EQ(registry.counter("msg.FM.count").value(),
            registry.counter("msg.RM.count").value());
  EXPECT_GT(registry.counter("apply.total").value(), 0u);
  EXPECT_GT(registry.counter("log.merge.count").value(), 0u);
  EXPECT_GT(registry.summary("log.entries").count(), 0u);
  EXPECT_GT(registry.summary("dest_set.size").count(), 0u);
  EXPECT_GE(registry.gauge("site.activation_queue.high_water").high_water(), 1.0);
  // Partial replication forces remote fetches, so the latency histogram
  // (fed by Simulator::now) has samples and sane quantiles.
  auto& lat = registry.histogram("fetch.latency_us", 0.0, 1e6, 200);
  EXPECT_GT(lat.count(), 0u);
  EXPECT_GE(lat.quantile(0.99), lat.quantile(0.50));
}

using Channel = std::pair<SiteId, SiteId>;

TEST(ThreadTransportTrace, PerChannelSequencesAreFifo) {
  RingBufferSink sink;
  dsm::ClusterConfig config;
  config.sites = 3;
  config.variables = 20;
  config.replication = 2;
  config.protocol = causal::ProtocolKind::kOptTrack;
  config.seed = 11;
  config.record_history = false;
  config.trace_sink = &sink;
  dsm::ThreadCluster cluster(config);
  cluster.execute(small_schedule(config.sites, 11));

  // Per (from, to) channel: wire-delay (send-side) and deliver
  // (receive-side) sequence numbers must both appear in FIFO order.
  std::map<Channel, std::uint64_t> next_sent;
  std::map<Channel, std::uint64_t> next_delivered;
  std::size_t wire = 0, deliver = 0;
  for (const TraceEvent& e : sink.events()) {
    if (e.type == TraceEventType::kWireDelay) {
      const Channel ch{e.site, e.peer};
      EXPECT_EQ(e.a, next_sent[ch]) << "out-of-order send on channel "
                                    << e.site << "->" << e.peer;
      ++next_sent[ch];
      ++wire;
    } else if (e.type == TraceEventType::kDeliver) {
      const Channel ch{e.peer, e.site};
      EXPECT_EQ(e.a, next_delivered[ch]) << "out-of-order delivery on channel "
                                         << e.peer << "->" << e.site;
      ++next_delivered[ch];
      ++deliver;
    }
  }
  EXPECT_GT(wire, 0u);
  EXPECT_EQ(wire, deliver);
}

TEST(ThreadClusterMetrics, ExportMatchesAggregateStats) {
  dsm::ClusterConfig config;
  config.sites = 3;
  config.variables = 20;
  config.replication = 0;  // full replication: no fetch traffic to race
  config.protocol = causal::ProtocolKind::kOptP;
  config.seed = 13;
  config.record_history = false;
  dsm::ThreadCluster cluster(config);
  cluster.execute(small_schedule(config.sites, 13));

  MetricsRegistry registry;
  cluster.export_metrics(registry);
  EXPECT_EQ(registry.counter("msg.SM.count").value(),
            cluster.aggregate_message_stats().of(MessageKind::kSM).count);
  EXPECT_GT(registry.counter("apply.total").value(), 0u);
}

}  // namespace
}  // namespace causim::obs
