// Unit tests for the seeded PRNG and distribution samplers.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"

namespace causim::sim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Rng, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u32() == b.next_u32() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Pcg32 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Pcg32 rng(3);
  std::array<int, 5> counts{};
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(10, 14);
    ASSERT_GE(v, 10);
    ASSERT_LE(v, 14);
    ++counts[v - 10];
  }
  for (const int c : counts) EXPECT_GT(c, 800);  // ~1000 each
}

TEST(Rng, UniformIntDegenerateRange) {
  Pcg32 rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, BernoulliMatchesProbability) {
  Pcg32 rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  Pcg32 r2(12);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r2.bernoulli(0.0));
    EXPECT_TRUE(r2.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanRoughlyRight) {
  Pcg32 rng(13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 20000, 5.0, 0.3);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Pcg32 root(5);
  Pcg32 a = root.split();
  Pcg32 b = root.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u32() == b.next_u32() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(Zipf, ZeroExponentIsUniform) {
  const ZipfSampler zipf(10, 0.0);
  Pcg32 rng(17);
  std::array<int, 10> counts{};
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(Zipf, SkewFavorsLowRanks) {
  const ZipfSampler zipf(100, 1.0);
  Pcg32 rng(19);
  std::array<int, 100> counts{};
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[9] * 4);  // 1/1 vs 1/10 weights
  EXPECT_GT(counts[0], counts[50]);
}

TEST(Zipf, SamplesStayInDomain) {
  const ZipfSampler zipf(7, 2.0);
  Pcg32 rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 7u);
}

TEST(Zipf, ProbabilityMatchesAnalyticWeights) {
  // The sampler's per-rank mass (the CDF increment the inversion assigns)
  // must equal the analytic (k+1)^-s / H(n, s) up to accumulated rounding,
  // and must sum to one exactly (the CDF is pinned to 1 at the top).
  const std::uint32_t n = 200;
  const double s = 0.99;
  const ZipfSampler zipf(n, s);
  EXPECT_EQ(zipf.domain(), n);
  double harmonic = 0.0;
  for (std::uint32_t k = 0; k < n; ++k) {
    harmonic += 1.0 / std::pow(static_cast<double>(k + 1), s);
  }
  double total = 0.0;
  for (std::uint32_t k = 0; k < n; ++k) {
    const double analytic = 1.0 / std::pow(static_cast<double>(k + 1), s) / harmonic;
    EXPECT_NEAR(zipf.probability(k), analytic, 1e-12) << "rank " << k;
    total += zipf.probability(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, FrequencyRatiosFollowTheHarmonicLaw) {
  // Property test: sampled frequencies must track probability(k), and the
  // rank-to-rank frequency *ratios* must follow (j+1)^s / (k+1)^s — the
  // law the workload generators rely on for popularity skew. Tolerances
  // are 4-sigma binomial bands (the generator is deterministic, so this
  // cannot flake).
  const std::uint32_t n = 50;
  const double s = 1.2;
  const ZipfSampler zipf(n, s);
  Pcg32 rng(29);
  const int samples = 400'000;
  std::vector<int> counts(n, 0);
  for (int i = 0; i < samples; ++i) ++counts[zipf.sample(rng)];
  for (const std::uint32_t k : {0u, 1u, 2u, 4u, 9u, 19u, 49u}) {
    const double p = zipf.probability(k);
    const double sigma = std::sqrt(p * (1.0 - p) / samples);
    EXPECT_NEAR(static_cast<double>(counts[k]) / samples, p, 4.0 * sigma)
        << "rank " << k;
  }
  for (const std::uint32_t k : {1u, 4u, 9u}) {
    const double measured =
        static_cast<double>(counts[0]) / static_cast<double>(counts[k]);
    const double analytic = std::pow(static_cast<double>(k + 1), s);
    EXPECT_NEAR(measured / analytic, 1.0, 0.15) << "rank ratio 0:" << k;
  }
}

}  // namespace
}  // namespace causim::sim
