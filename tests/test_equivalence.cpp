// Closed-form checks: the measured message counts equal the complexity
// formulas of §V-A/§V-B when evaluated exactly (per-op, not in
// expectation), and the Eq. (2) crossover behaves as derived.
#include <gtest/gtest.h>

#include "bench_support/experiment.hpp"
#include "dsm/cluster.hpp"
#include "workload/schedule.hpp"

namespace causim {
namespace {

TEST(Formulas, PartialReplicationExpectedCountApproximation) {
  // The paper's formula ((p-1) + (n-p)/n)·w + 2r(n-p)/n assumes variables
  // uniformly replicated; the measured count over a uniform workload must
  // land within a few percent.
  const SiteId n = 10;
  const SiteId p = 3;
  bench_support::ExperimentParams params;
  params.sites = n;
  params.replication = p;
  params.write_rate = 0.5;
  params.ops_per_site = 500;
  params.seeds = {1, 2};
  params.protocol = causal::ProtocolKind::kOptTrack;
  const auto r = bench_support::run_experiment(params);

  const double w = static_cast<double>(r.recorded_writes) / r.runs;
  const double reads = static_cast<double>(r.recorded_reads) / r.runs;
  const double expected =
      ((p - 1) + static_cast<double>(n - p) / n) * w + 2.0 * reads * (n - p) / n;
  EXPECT_NEAR(r.mean_message_count() / expected, 1.0, 0.05);
}

TEST(Formulas, FullReplicationCountIsExact) {
  bench_support::ExperimentParams params;
  params.sites = 7;
  params.replication = 0;
  params.write_rate = 0.4;
  params.ops_per_site = 200;
  params.seeds = {9};
  params.protocol = causal::ProtocolKind::kOptP;
  const auto r = bench_support::run_experiment(params);
  EXPECT_DOUBLE_EQ(r.mean_message_count(),
                   static_cast<double>(r.recorded_writes) * (7 - 1));
}

TEST(Formulas, OptPSmOverheadIsExactlyLinear) {
  // optP's SM meta is the n-vector: meta bytes per SM = 2 + n·width, for
  // every message, regardless of write rate.
  for (const SiteId n : {5, 12}) {
    bench_support::ExperimentParams params;
    params.sites = n;
    params.replication = 0;
    params.write_rate = 0.6;
    params.ops_per_site = 100;
    params.seeds = {2};
    params.protocol = causal::ProtocolKind::kOptP;
    params.protocol_options = causal::ProtocolOptions{};  // 4-byte clocks
    const auto r = bench_support::run_experiment(params);
    const auto& sm = r.stats.of(MessageKind::kSM);
    EXPECT_EQ(sm.meta_bytes, sm.count * (2 + 4ull * n));
  }
}

TEST(Formulas, FullTrackSmOverheadIsExactlyQuadratic) {
  const SiteId n = 9;
  bench_support::ExperimentParams params;
  params.sites = n;
  params.replication = 3;
  params.write_rate = 0.5;
  params.ops_per_site = 100;
  params.seeds = {4};
  params.protocol = causal::ProtocolKind::kFullTrack;
  params.protocol_options = causal::ProtocolOptions{};
  const auto r = bench_support::run_experiment(params);
  const auto& sm = r.stats.of(MessageKind::kSM);
  EXPECT_EQ(sm.meta_bytes, sm.count * (2 + 4ull * n * n));
  const auto& rm = r.stats.of(MessageKind::kRM);
  EXPECT_EQ(rm.meta_bytes, rm.count * (2 + 4ull * n * n));
  // FM carries no meta at all.
  EXPECT_EQ(r.stats.of(MessageKind::kFM).meta_bytes, 0u);
}

TEST(Formulas, FmOverheadConstantAcrossProtocolsAndRates) {
  double sizes[2][2];
  int pi = 0;
  for (const auto kind :
       {causal::ProtocolKind::kOptTrack, causal::ProtocolKind::kFullTrack}) {
    int wi = 0;
    for (const double wrate : {0.2, 0.8}) {
      bench_support::ExperimentParams params;
      params.sites = 8;
      params.replication = 2;
      params.write_rate = wrate;
      params.ops_per_site = 150;
      params.seeds = {6};
      params.protocol = kind;
      const auto r = bench_support::run_experiment(params);
      sizes[pi][wi++] = r.avg_overhead(MessageKind::kFM);
    }
    ++pi;
  }
  EXPECT_DOUBLE_EQ(sizes[0][0], sizes[0][1]);
  EXPECT_DOUBLE_EQ(sizes[0][0], sizes[1][0]);
  EXPECT_DOUBLE_EQ(sizes[1][0], sizes[1][1]);
}

TEST(Formulas, CrossoverFollowsEquationTwo) {
  // For n = 10 the predicted crossover is 2/11 ≈ 0.18: partial replication
  // must lose on message count below it and win above it.
  const SiteId n = 10;
  const auto count_for = [&](causal::ProtocolKind kind, SiteId p, double wrate) {
    bench_support::ExperimentParams params;
    params.sites = n;
    params.replication = p;
    params.write_rate = wrate;
    params.ops_per_site = 400;
    params.seeds = {8};
    params.protocol = kind;
    return bench_support::run_experiment(params).mean_message_count();
  };
  const SiteId p = bench_support::partial_replication_factor(n);
  EXPECT_GT(count_for(causal::ProtocolKind::kOptTrack, p, 0.06),
            count_for(causal::ProtocolKind::kOptTrackCrp, 0, 0.06));
  EXPECT_LT(count_for(causal::ProtocolKind::kOptTrack, p, 0.5),
            count_for(causal::ProtocolKind::kOptTrackCrp, 0, 0.5));
}

}  // namespace
}  // namespace causim
