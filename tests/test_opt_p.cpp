// Unit tests for optP — the Baldoni et al. full-replication baseline.
#include <gtest/gtest.h>

#include "causal/opt_p.hpp"

namespace causim::causal {
namespace {

constexpr SiteId kN = 4;

serial::Bytes write_at(OptP& p, VarId var, WriteId* id) {
  serial::ByteWriter meta;
  *id = p.local_write(var, Value{1, 0}, DestSet::all(kN), meta);
  return meta.take();
}

std::unique_ptr<PendingUpdate> make_pending(OptP& receiver, SiteId sender, VarId var,
                                            const WriteId& id, const serial::Bytes& meta) {
  serial::ByteReader r(meta);
  return receiver.decode_sm(SmEnvelope{sender, var, Value{1, 0}, id}, DestSet::all(kN), r);
}

TEST(OptP, WriteIncrementsOwnEntryAndAppliesLocally) {
  OptP p(2, kN);
  WriteId id;
  write_at(p, 0, &id);
  EXPECT_EQ(id, (WriteId{2, 1}));
  EXPECT_EQ(p.write_clock()[2], 1u);
  EXPECT_EQ(p.applied_count(2), 1u);
}

TEST(OptP, SmMetaIsExactlyTheVector) {
  OptP p(0, kN);
  WriteId id;
  const auto meta = write_at(p, 0, &id);
  EXPECT_EQ(meta.size(), VectorClock::wire_bytes(kN, serial::ClockWidth::k4Bytes));
}

TEST(OptP, SmSizeIndependentOfHistory) {
  // The hallmark weakness vs Opt-Track-CRP: the piggyback never shrinks or
  // grows — it is always the n-entry vector.
  OptP a(0, kN), b(1, kN);
  WriteId id;
  const auto first = write_at(a, 0, &id);
  for (int i = 0; i < 20; ++i) write_at(a, i % 3, &id);
  const auto later = write_at(a, 1, &id);
  EXPECT_EQ(first.size(), later.size());
  (void)b;
}

TEST(OptP, ProgramOrderGating) {
  OptP a(0, kN), b(1, kN);
  WriteId w1, w2;
  const auto m1 = write_at(a, 0, &w1);
  const auto m2 = write_at(a, 0, &w2);
  const auto p2 = make_pending(b, 0, 0, w2, m2);
  EXPECT_FALSE(b.ready(*p2));
  const auto p1 = make_pending(b, 0, 0, w1, m1);
  ASSERT_TRUE(b.ready(*p1));
  b.apply(*p1);
  EXPECT_TRUE(b.ready(*p2));
  b.apply(*p2);
  EXPECT_EQ(b.applied_count(0), 2u);
}

TEST(OptP, ReadCreatesDependencyNoReadNoDependency) {
  for (const bool with_read : {true, false}) {
    OptP s0(0, kN), s1(1, kN), s2(2, kN);
    WriteId wx, wy;
    const auto mx = write_at(s0, 0, &wx);
    const auto px1 = make_pending(s1, 0, 0, wx, mx);
    s1.apply(*px1);
    if (with_read) s1.local_read(0);
    const auto my = write_at(s1, 1, &wy);
    const auto py = make_pending(s2, 1, 1, wy, my);
    EXPECT_EQ(s2.ready(*py), !with_read);
  }
}

TEST(OptP, MergeOnReadIsEntrywiseMax) {
  OptP a(0, kN), b(1, kN);
  WriteId wb;
  const auto mb = write_at(b, 3, &wb);
  const auto pb = make_pending(a, 1, 3, wb, mb);
  a.apply(*pb);
  EXPECT_EQ(a.write_clock()[1], 0u) << "receipt alone must not merge (→co, not →)";
  a.local_read(3);
  EXPECT_EQ(a.write_clock()[1], 1u);
}

TEST(OptPDeathTest, RequiresFullReplication) {
  OptP p(0, kN);
  serial::ByteWriter meta;
  EXPECT_DEATH(p.local_write(0, Value{1, 0}, DestSet(kN, {0}), meta), "full replication");
}

}  // namespace
}  // namespace causim::causal
