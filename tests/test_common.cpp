// Coverage for the small common types: values, write ids, message kinds,
// protocol names, panic formatting, and envelope error paths.
#include <gtest/gtest.h>

#include "causal/factory.hpp"
#include "common/ids.hpp"
#include "common/message_kind.hpp"
#include "common/panic.hpp"
#include "common/value.hpp"
#include "dsm/envelope.hpp"

namespace causim {
namespace {

TEST(Value, BottomSemantics) {
  EXPECT_TRUE(is_bottom(kBottom));
  EXPECT_TRUE(is_bottom(Value{}));
  EXPECT_FALSE(is_bottom(Value{1, 0}));
  EXPECT_EQ(Value{}, kBottom);
}

TEST(WriteIdTest, NullAndOrdering) {
  EXPECT_TRUE(is_null(WriteId{}));
  EXPECT_FALSE(is_null(WriteId{0, 1}));
  EXPECT_LT((WriteId{1, 5}), (WriteId{1, 6}));
  EXPECT_LT((WriteId{1, 99}), (WriteId{2, 1}));  // writer-major
  EXPECT_EQ((WriteId{3, 4}), (WriteId{3, 4}));
}

TEST(WriteIdTest, HashDistinguishes) {
  const std::hash<WriteId> h;
  EXPECT_NE(h(WriteId{1, 2}), h(WriteId{2, 1}));
  EXPECT_EQ(h(WriteId{5, 7}), h(WriteId{5, 7}));
}

TEST(MessageKindTest, Names) {
  EXPECT_STREQ(to_string(MessageKind::kSM), "SM");
  EXPECT_STREQ(to_string(MessageKind::kFM), "FM");
  EXPECT_STREQ(to_string(MessageKind::kRM), "RM");
  EXPECT_EQ(kAllMessageKinds.size(), 3u);
}

TEST(ProtocolKindTest, Names) {
  using causal::ProtocolKind;
  EXPECT_STREQ(to_string(ProtocolKind::kFullTrack), "Full-Track");
  EXPECT_STREQ(to_string(ProtocolKind::kOptTrack), "Opt-Track");
  EXPECT_STREQ(to_string(ProtocolKind::kOptTrackCrp), "Opt-Track-CRP");
  EXPECT_STREQ(to_string(ProtocolKind::kOptP), "optP");
  EXPECT_STREQ(to_string(ProtocolKind::kFullTrackHb), "Full-Track-HB");
}

TEST(ProtocolKindTest, FullReplicationRequirement) {
  using causal::ProtocolKind;
  EXPECT_FALSE(causal::requires_full_replication(ProtocolKind::kFullTrack));
  EXPECT_FALSE(causal::requires_full_replication(ProtocolKind::kOptTrack));
  EXPECT_FALSE(causal::requires_full_replication(ProtocolKind::kFullTrackHb));
  EXPECT_TRUE(causal::requires_full_replication(ProtocolKind::kOptTrackCrp));
  EXPECT_TRUE(causal::requires_full_replication(ProtocolKind::kOptP));
}

TEST(FactoryTest, BuildsEveryKindBoundToTheRightSite) {
  using causal::ProtocolKind;
  for (const auto kind : {ProtocolKind::kFullTrack, ProtocolKind::kOptTrack,
                          ProtocolKind::kOptTrackCrp, ProtocolKind::kOptP,
                          ProtocolKind::kFullTrackHb}) {
    const auto protocol = causal::make_protocol(kind, 2, 5);
    ASSERT_NE(protocol, nullptr);
    EXPECT_EQ(protocol->kind(), kind);
    EXPECT_EQ(protocol->self(), 2);
    EXPECT_EQ(protocol->sites(), 5);
  }
}

TEST(PanicDeathTest, IncludesLocationAndMessage) {
  EXPECT_DEATH(panic("somefile.cpp", 42, "the message"),
               "somefile.cpp:42: the message");
}

TEST(PanicDeathTest, CheckMacroFormatsStreamedMessage) {
  const int x = 7;
  EXPECT_DEATH(CAUSIM_CHECK(x == 8, "x was " << x), "CHECK failed: x == 8 .* x was 7");
}

TEST(EnvelopeDeathTest, BadKindByteOnTheWire) {
  serial::Bytes bytes{0x77};  // not a MessageKind
  bytes.resize(32, 0);
  EXPECT_DEATH(dsm::Envelope::decode(bytes, serial::ClockWidth::k4Bytes),
               "malformed envelope");
}

TEST(EnvelopeDeathTest, TruncatedMetaPanics) {
  dsm::Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 0;
  e.var = 0;
  e.meta = {1, 2, 3, 4};
  serial::Bytes bytes = e.encode(serial::ClockWidth::k4Bytes);
  bytes.resize(bytes.size() - 2);  // chop the tail
  EXPECT_DEATH(dsm::Envelope::decode(bytes, serial::ClockWidth::k4Bytes), "");
}

}  // namespace
}  // namespace causim
