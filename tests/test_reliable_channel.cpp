// Property tests for the reliability sublayer (net::ReliableChannel /
// net::ReliableTransport): retransmit-until-acked, deterministic
// exponential backoff with reset-on-progress, duplicate suppression, and
// in-order exactly-once release under adversarial drop / duplication /
// reordering — first on the pure per-channel state machine, then through
// the full transport stack over both substrates (the simulator and real
// threads; the threaded suites double as the TSan targets in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "faults/fault_injector.hpp"
#include "net/reliable_channel.hpp"
#include "net/sim_transport.hpp"
#include "net/thread_transport.hpp"
#include "net/timer.hpp"
#include "sim/latency.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace causim::net {
namespace {

serial::Bytes payload(std::uint8_t tag, std::size_t len = 4) {
  return serial::Bytes(len, tag);
}

// ---- ReliableChannel: the pure state machine ----

TEST(ReliableChannel, InOrderDeliveryReleasesImmediately) {
  ReliableChannel sender, receiver;
  for (std::uint8_t i = 0; i < 5; ++i) {
    const serial::Bytes frame = sender.send(payload(i));
    auto ingest = receiver.on_frame(frame);
    ASSERT_EQ(ingest.released.size(), 1u);
    EXPECT_EQ(ingest.released[0].seq, i);
    EXPECT_EQ(ingest.released[0].payload, payload(i));
    EXPECT_FALSE(ingest.was_duplicate);
    EXPECT_FALSE(ingest.ack.empty());
    // Feed the ack back: the sender's window must drain.
    auto acked = sender.on_frame(ingest.ack);
    EXPECT_TRUE(acked.was_ack);
    EXPECT_TRUE(acked.made_progress);
    EXPECT_EQ(sender.unacked(), 0u);
  }
}

TEST(ReliableChannel, RetransmitsEverythingUnackedUntilAcked) {
  ReliableChannel sender, receiver;
  sender.send(payload(0));
  sender.send(payload(1));
  sender.send(payload(2));
  EXPECT_TRUE(sender.timer_needed());

  // Two timeouts with nothing acked: all three frames resent both times.
  for (int round = 0; round < 2; ++round) {
    const auto frames = sender.on_timer();
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].seq, 0u);
    EXPECT_EQ(frames[2].seq, 2u);
  }
  EXPECT_EQ(sender.retransmit_count(), 6u);

  // Deliver one retransmitted copy of each; the cumulative ack clears all.
  ReliableChannel::Ingest last;
  for (const auto& f : sender.on_timer()) last = receiver.on_frame(f.bytes);
  sender.on_frame(last.ack);
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_FALSE(sender.timer_needed());
  EXPECT_TRUE(sender.on_timer().empty());
}

TEST(ReliableChannel, BackoffIsDeterministicAndCapped) {
  ReliableConfig config;
  config.rto_initial = 100;
  config.rto_max = 450;
  config.rto_backoff = 2.0;
  ReliableChannel a(config), b(config);
  a.send(payload(1));
  b.send(payload(1));
  std::vector<SimTime> seen_a, seen_b;
  for (int i = 0; i < 5; ++i) {
    seen_a.push_back(a.rto());
    seen_b.push_back(b.rto());
    a.on_timer();
    b.on_timer();
  }
  // Two identical channels walk the identical backoff sequence.
  EXPECT_EQ(seen_a, seen_b);
  EXPECT_EQ(seen_a, (std::vector<SimTime>{100, 200, 400, 450, 450}));
}

TEST(ReliableChannel, AckProgressResetsBackoff) {
  ReliableConfig config;
  config.rto_initial = 100;
  config.rto_max = 10000;
  ReliableChannel sender, receiver;
  ReliableChannel configured(config);
  configured.send(payload(0));
  configured.on_timer();
  configured.on_timer();
  EXPECT_EQ(configured.rto(), 400);

  configured.send(payload(1));
  // Receiver acks seq 0 only (ack value 1 = next expected).
  ReliableChannel peer(config);
  auto ingest = peer.on_frame(ReliableChannel(config).send(payload(0)));
  auto progress = configured.on_frame(ingest.ack);
  EXPECT_TRUE(progress.made_progress);
  EXPECT_EQ(configured.rto(), 100);  // reset, not 800
  EXPECT_EQ(configured.unacked(), 1u);

  // A duplicate ack (no new progress) must NOT reset anything again.
  configured.on_timer();
  EXPECT_EQ(configured.rto(), 200);
  auto stale = configured.on_frame(ingest.ack);
  EXPECT_FALSE(stale.made_progress);
  EXPECT_EQ(configured.rto(), 200);
}

TEST(ReliableChannel, DuplicateFramesSuppressedButReAcked) {
  ReliableChannel sender, receiver;
  const serial::Bytes frame = sender.send(payload(9));
  auto first = receiver.on_frame(frame);
  ASSERT_EQ(first.released.size(), 1u);

  auto second = receiver.on_frame(frame);
  EXPECT_TRUE(second.was_duplicate);
  EXPECT_TRUE(second.released.empty());
  // The duplicate usually means our ack was lost — it must be re-acked.
  EXPECT_FALSE(second.ack.empty());
  EXPECT_EQ(receiver.dup_suppressed(), 1u);
  EXPECT_EQ(receiver.next_expected(), 1u);
}

TEST(ReliableChannel, OutOfOrderArrivalsBufferAndReleaseInOrder) {
  ReliableChannel sender, receiver;
  std::vector<serial::Bytes> frames;
  for (std::uint8_t i = 0; i < 4; ++i) frames.push_back(sender.send(payload(i)));

  // Arrival order 2, 3, 0, 1.
  EXPECT_TRUE(receiver.on_frame(frames[2]).released.empty());
  EXPECT_TRUE(receiver.on_frame(frames[3]).released.empty());
  EXPECT_EQ(receiver.reorder_buffered(), 2u);

  auto burst = receiver.on_frame(frames[0]);
  ASSERT_EQ(burst.released.size(), 1u);  // 0 releases; 1 still missing
  EXPECT_EQ(burst.released[0].seq, 0u);

  auto rest = receiver.on_frame(frames[1]);
  ASSERT_EQ(rest.released.size(), 3u);  // 1 fills the gap: 1, 2, 3
  EXPECT_EQ(rest.released[0].seq, 1u);
  EXPECT_EQ(rest.released[2].seq, 3u);
  EXPECT_EQ(receiver.reorder_buffered(), 0u);
}

TEST(ReliableChannel, CumulativeAckClearsEverythingBelow) {
  ReliableChannel sender, receiver;
  std::vector<serial::Bytes> frames;
  for (std::uint8_t i = 0; i < 5; ++i) frames.push_back(sender.send(payload(i)));
  // Deliver 0..2; the third ack is cumulative for all three.
  ReliableChannel::Ingest ingest;
  for (int i = 0; i < 3; ++i) ingest = receiver.on_frame(frames[i]);
  sender.on_frame(ingest.ack);
  EXPECT_EQ(sender.unacked(), 2u);  // 3, 4 outstanding
}

/// Adversarial medium: every frame in flight may be delivered, dropped,
/// duplicated, or reordered at the whim of a seeded RNG, with sender
/// timeouts interleaved. Whatever happens, the receiver must hand up
/// exactly the sent payload sequence, in order, exactly once.
TEST(ReliableChannel, ExactlyOnceFifoUnderAdversarialMedium) {
  constexpr int kMessages = 60;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    sim::Pcg32 rng(seed);
    ReliableChannel sender, receiver;
    std::vector<serial::Bytes> medium;       // data frames in flight
    std::vector<serial::Bytes> ack_medium;   // ack frames in flight
    std::vector<std::uint64_t> delivered;    // seqs released to the app
    int sent = 0;

    const auto step = [&] {
      const double roll = rng.uniform();
      if (roll < 0.30 && sent < kMessages) {
        medium.push_back(sender.send(payload(static_cast<std::uint8_t>(sent))));
        ++sent;
      } else if (roll < 0.55 && !medium.empty()) {
        // Deliver a random in-flight data frame (reordering).
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(medium.size()) - 1));
        auto ingest = receiver.on_frame(medium[pick]);
        medium.erase(medium.begin() + static_cast<std::ptrdiff_t>(pick));
        for (const auto& r : ingest.released) delivered.push_back(r.seq);
        ack_medium.push_back(ingest.ack);
      } else if (roll < 0.65 && !medium.empty()) {
        // Drop a random data frame.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(medium.size()) - 1));
        medium.erase(medium.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (roll < 0.72 && !medium.empty()) {
        // Duplicate a random data frame.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(medium.size()) - 1));
        medium.push_back(medium[pick]);
      } else if (roll < 0.85 && !ack_medium.empty()) {
        // Deliver (or, below, lose) a random ack.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ack_medium.size()) - 1));
        sender.on_frame(ack_medium[pick]);
        ack_medium.erase(ack_medium.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (roll < 0.90 && !ack_medium.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ack_medium.size()) - 1));
        ack_medium.erase(ack_medium.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        // Retransmission timeout: everything unacked re-enters the medium.
        for (auto& f : sender.on_timer()) medium.push_back(std::move(f.bytes));
      }
    };

    // Run until all messages are sent, delivered, and acked (the timeout
    // arm guarantees progress, so this always terminates).
    int stall_guard = 0;
    while (sent < kMessages || sender.unacked() != 0 ||
           delivered.size() < static_cast<std::size_t>(kMessages)) {
      step();
      ASSERT_LT(++stall_guard, 200000) << "seed " << seed << " wedged";
    }

    ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kMessages))
        << "seed " << seed;
    for (int i = 0; i < kMessages; ++i) {
      EXPECT_EQ(delivered[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i))
          << "seed " << seed;
    }
  }
}

// ---- Hardened frame ingestion (malformed / forged input) ----

TEST(ReliableChannel, TruncatedFramesAreCountedAndDroppedWithoutPanic) {
  ReliableChannel sender, receiver;
  const serial::Bytes frame = sender.send(payload(7));
  // Every truncation below the header is malformed — including empty.
  std::uint64_t expected = 0;
  for (std::size_t len = 0; len < ReliableChannel::kFrameHeaderBytes; ++len) {
    const serial::Bytes cut(frame.begin(),
                            frame.begin() + static_cast<std::ptrdiff_t>(len));
    auto ingest = receiver.on_frame(cut);
    EXPECT_TRUE(ingest.malformed) << "len " << len;
    EXPECT_TRUE(ingest.released.empty());
    EXPECT_TRUE(ingest.ack.empty());
    EXPECT_EQ(receiver.malformed_count(), ++expected);
  }
  // Receiver state is untouched: the intact frame still delivers.
  EXPECT_EQ(receiver.next_expected(), 0u);
  EXPECT_EQ(receiver.on_frame(frame).released.size(), 1u);
}

TEST(ReliableChannel, UnknownFrameTagIsMalformedNotFatal) {
  ReliableChannel sender, receiver;
  serial::Bytes frame = sender.send(payload(3));
  for (const std::uint8_t tag : {0x00, 0x7F, 0xFF}) {
    frame[0] = tag;
    auto ingest = receiver.on_frame(frame);
    EXPECT_TRUE(ingest.malformed);
    EXPECT_FALSE(ingest.was_ack);
  }
  EXPECT_EQ(receiver.malformed_count(), 3u);
}

TEST(ReliableChannel, ForgedCumulativeAckIsRejectedWithoutStateChange) {
  ReliableChannel sender;
  sender.send(payload(0));
  sender.send(payload(1));
  // Forge an ACK claiming 5 frames delivered when only 2 were ever sent.
  serial::Bytes forged{ReliableChannel::kAckFrame, 5, 0, 0, 0, 0, 0, 0, 0};
  auto ingest = sender.on_frame(forged);
  EXPECT_TRUE(ingest.was_ack);
  EXPECT_TRUE(ingest.ack_rejected);
  EXPECT_FALSE(ingest.made_progress);
  EXPECT_EQ(sender.unacked(), 2u);  // nothing "acked" by the forgery
  EXPECT_EQ(sender.acks_rejected(), 1u);
  // The boundary value (= next_seq, everything sent) is legitimate.
  serial::Bytes exact{ReliableChannel::kAckFrame, 2, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(sender.on_frame(exact).ack_rejected);
  EXPECT_EQ(sender.unacked(), 0u);
}

TEST(ReliableChannel, SackListFuzzTruncationAndForgery) {
  ReliableConfig sr;
  sr.arq = ArqMode::kSelectiveRepeat;
  ReliableChannel sender(sr), receiver(sr);
  std::vector<serial::Bytes> frames;
  for (std::uint8_t i = 0; i < 4; ++i) frames.push_back(sender.send(payload(i)));
  receiver.on_frame(frames[2]);
  const serial::Bytes sack = receiver.on_frame(frames[3]).ack;  // cum 0, {2,3}
  ASSERT_EQ(sack[0], ReliableChannel::kSackFrame);
  ASSERT_EQ(sack.size(), ReliableChannel::kFrameHeaderBytes + 1 + 2 * 8);

  // Every truncation that still parses as a SACK header must be rejected
  // as malformed (declared list overruns the frame), mutating nothing.
  for (std::size_t len = ReliableChannel::kFrameHeaderBytes; len < sack.size();
       ++len) {
    const serial::Bytes cut(sack.begin(),
                            sack.begin() + static_cast<std::ptrdiff_t>(len));
    auto ingest = sender.on_frame(cut);
    EXPECT_TRUE(ingest.malformed) << "len " << len;
    EXPECT_FALSE(ingest.made_progress);
  }
  EXPECT_EQ(sender.sacked_outstanding(), 0u);

  // A SACK entry naming a never-sent sequence is a forgery: rejected whole.
  serial::Bytes forged = sack;
  forged[ReliableChannel::kFrameHeaderBytes + 1] = 9;  // first entry -> seq 9
  auto ingest = sender.on_frame(forged);
  EXPECT_TRUE(ingest.ack_rejected);
  EXPECT_EQ(sender.sacked_outstanding(), 0u);

  // The intact SACK then lands: 2 and 3 marked held, nothing cum-acked.
  auto ok = sender.on_frame(sack);
  EXPECT_TRUE(ok.made_progress);
  EXPECT_EQ(sender.sacked_outstanding(), 2u);
  EXPECT_EQ(sender.unacked(), 4u);
}

// ---- Selective repeat ----

TEST(ReliableChannel, SelectiveRepeatResendsOnlyMissingFrames) {
  ReliableConfig sr;
  sr.arq = ArqMode::kSelectiveRepeat;
  ReliableChannel sender(sr), receiver(sr);
  std::vector<serial::Bytes> frames;
  for (std::uint8_t i = 0; i < 3; ++i) frames.push_back(sender.send(payload(i)));

  // Frame 0 is lost; 1 and 2 arrive and are SACKed.
  receiver.on_frame(frames[1]);
  const serial::Bytes sack = receiver.on_frame(frames[2]).ack;
  sender.on_frame(sack);
  EXPECT_EQ(sender.sacked_outstanding(), 2u);

  // Timeout resends only the missing frame 0 — not the SACKed 1 and 2
  // (go-back-N would resend all three).
  const auto resent = sender.on_timer();
  ASSERT_EQ(resent.size(), 1u);
  EXPECT_EQ(resent[0].seq, 0u);
  EXPECT_EQ(sender.retransmit_count(), 1u);

  // The retransmission fills the gap: 0,1,2 release and the cumulative
  // ACK clears everything, sacked frames included.
  auto burst = receiver.on_frame(resent[0].bytes);
  ASSERT_EQ(burst.released.size(), 3u);
  sender.on_frame(burst.ack);
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_EQ(sender.sacked_outstanding(), 0u);
}

TEST(ReliableChannel, AllSackedStillProbesLowestFrame) {
  // A stale SACK can mark every outstanding frame as held by the receiver
  // while the cumulative ACK that would clear them was lost. The timeout
  // must still resend something (the lowest frame, as an ACK-eliciting
  // probe) or the channel wedges forever.
  ReliableConfig sr;
  sr.arq = ArqMode::kSelectiveRepeat;
  ReliableChannel sender(sr), receiver(sr);
  const serial::Bytes f0 = sender.send(payload(0));
  const serial::Bytes f1 = sender.send(payload(1));
  receiver.on_frame(f1);  // SACK cum 0, {1}
  auto full = receiver.on_frame(f0);  // cum 2 — and this ACK gets "lost"
  ASSERT_EQ(full.released.size(), 2u);

  // Deliver only the stale SACK out of order, then lose cum 2: frame 0
  // stays outstanding un-sacked... now forge the worst case by re-sacking
  // via a duplicate of the stale SACK after a partial cum.
  serial::Bytes stale_sack = receiver.on_frame(f1).ack;  // dup: cum 2 re-ack
  ASSERT_EQ(stale_sack[0], ReliableChannel::kSackFrame);
  // Craft the genuinely stale frame: cum 1 with {1} sacked -> after it,
  // the single outstanding frame 1 is sacked.
  serial::Bytes crafted{ReliableChannel::kSackFrame, 1, 0, 0, 0, 0, 0, 0, 0, 1,
                        1, 0, 0, 0, 0, 0, 0, 0};
  sender.on_frame(crafted);
  EXPECT_EQ(sender.unacked(), 1u);
  EXPECT_EQ(sender.sacked_outstanding(), 1u);

  // All outstanding frames are sacked — the probe must still fire.
  const auto probe = sender.on_timer();
  ASSERT_EQ(probe.size(), 1u);
  EXPECT_EQ(probe[0].seq, 1u);

  // The probe elicits a fresh cumulative ACK that finally clears it.
  auto reack = receiver.on_frame(probe[0].bytes);
  EXPECT_TRUE(reack.was_duplicate);
  sender.on_frame(reack.ack);
  EXPECT_EQ(sender.unacked(), 0u);
}

TEST(ReliableChannel, ExactlyOnceFifoUnderAdversarialMediumSelectiveRepeat) {
  constexpr int kMessages = 60;
  ReliableConfig sr;
  sr.arq = ArqMode::kSelectiveRepeat;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    sim::Pcg32 rng(seed + 1000);  // distinct adversary from the GBN run
    ReliableChannel sender(sr), receiver(sr);
    std::vector<serial::Bytes> medium;
    std::vector<serial::Bytes> ack_medium;
    std::vector<std::uint64_t> delivered;
    int sent = 0;

    const auto step = [&] {
      const double roll = rng.uniform();
      if (roll < 0.30 && sent < kMessages) {
        medium.push_back(sender.send(payload(static_cast<std::uint8_t>(sent))));
        ++sent;
      } else if (roll < 0.55 && !medium.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(medium.size()) - 1));
        auto ingest = receiver.on_frame(medium[pick]);
        medium.erase(medium.begin() + static_cast<std::ptrdiff_t>(pick));
        for (const auto& r : ingest.released) delivered.push_back(r.seq);
        ack_medium.push_back(ingest.ack);
      } else if (roll < 0.65 && !medium.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(medium.size()) - 1));
        medium.erase(medium.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (roll < 0.72 && !medium.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(medium.size()) - 1));
        medium.push_back(medium[pick]);
      } else if (roll < 0.80 && !ack_medium.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ack_medium.size()) - 1));
        sender.on_frame(ack_medium[pick]);
        ack_medium.erase(ack_medium.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (roll < 0.85 && !ack_medium.empty()) {
        // Duplicate an ACK: stale SACKs re-arriving is exactly the
        // all-sacked corner the probe logic exists for.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ack_medium.size()) - 1));
        ack_medium.push_back(ack_medium[pick]);
      } else if (roll < 0.90 && !ack_medium.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ack_medium.size()) - 1));
        ack_medium.erase(ack_medium.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        for (auto& f : sender.on_timer()) medium.push_back(std::move(f.bytes));
      }
    };

    int stall_guard = 0;
    while (sent < kMessages || sender.unacked() != 0 ||
           delivered.size() < static_cast<std::size_t>(kMessages)) {
      step();
      ASSERT_LT(++stall_guard, 200000) << "seed " << seed << " wedged";
    }

    ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kMessages))
        << "seed " << seed;
    for (int i = 0; i < kMessages; ++i) {
      EXPECT_EQ(delivered[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i))
          << "seed " << seed;
    }
  }
}

// ---- Adaptive RTO (Jacobson/Karels + Karn) ----

ReliableConfig adaptive_config() {
  ReliableConfig config;
  config.adaptive_rto = true;
  config.rto_initial = 1000;
  config.rto_min = 10;
  config.rto_max = 100000;
  return config;
}

TEST(ReliableChannel, FirstRttSampleSeedsEstimatorPerRfc6298) {
  ReliableChannel sender(adaptive_config()), receiver;
  const serial::Bytes frame = sender.send(payload(0), /*now=*/100);
  auto ingest = sender.on_frame(receiver.on_frame(frame).ack, /*now=*/180);
  EXPECT_EQ(ingest.rtt_sample, 80);
  EXPECT_EQ(sender.rtt_samples(), 1u);
  EXPECT_EQ(sender.srtt(), 80);    // SRTT = R
  EXPECT_EQ(sender.rttvar(), 40);  // RTTVAR = R/2
  EXPECT_EQ(sender.rto(), 80 + 4 * 40);
}

TEST(ReliableChannel, EstimatorConvergesOnSteadyRtt) {
  ReliableChannel sender(adaptive_config()), receiver;
  SimTime now = 0;
  for (int i = 0; i < 40; ++i) {
    const serial::Bytes frame = sender.send(payload(0), now);
    sender.on_frame(receiver.on_frame(frame).ack, now + 100);
    now += 5000;
  }
  EXPECT_EQ(sender.rtt_samples(), 40u);
  // Constant 100 µs round trips: SRTT -> 100, RTTVAR -> 0, so the RTO
  // decays toward SRTT (clamped at rto_min below it).
  EXPECT_EQ(sender.srtt(), 100);
  EXPECT_LE(sender.rttvar(), 2);
  EXPECT_GE(sender.rto(), 100);
  EXPECT_LE(sender.rto(), 110);
}

TEST(ReliableChannel, RtoClampsToConfiguredBounds) {
  ReliableConfig config = adaptive_config();
  config.rto_min = 500;
  ReliableChannel sender(config), receiver;
  // Tiny RTT: estimator value (~30) clamps up to rto_min.
  sender.on_frame(receiver.on_frame(sender.send(payload(0), 0)).ack, 10);
  EXPECT_EQ(sender.rto(), 500);

  ReliableConfig tight = adaptive_config();
  tight.rto_initial = 100;
  tight.rto_max = 120;
  ReliableChannel capped(tight);
  ReliableChannel peer;
  // Huge RTT: estimator value (3·R) clamps down to rto_max.
  capped.on_frame(peer.on_frame(capped.send(payload(0), 0)).ack, 1000);
  EXPECT_EQ(capped.rto(), 120);
}

TEST(ReliableChannel, KarnRuleExcludesRetransmittedFrames) {
  ReliableChannel sender(adaptive_config()), receiver;
  const serial::Bytes frame = sender.send(payload(0), /*now=*/0);
  sender.on_timer(/*now=*/2000);  // retransmission: frame 0 is tainted
  auto ingest = sender.on_frame(receiver.on_frame(frame).ack, /*now=*/2100);
  EXPECT_TRUE(ingest.made_progress);
  EXPECT_EQ(ingest.rtt_sample, 0);  // no sample: ambiguous round trip
  EXPECT_EQ(sender.rtt_samples(), 0u);

  // A later clean frame samples normally.
  const serial::Bytes clean = sender.send(payload(1), /*now=*/3000);
  ingest = sender.on_frame(receiver.on_frame(clean).ack, /*now=*/3070);
  EXPECT_EQ(ingest.rtt_sample, 70);
  EXPECT_EQ(sender.rtt_samples(), 1u);
}

TEST(ReliableChannel, BackoffResetsToEstimatorValueOnProgress) {
  ReliableChannel sender(adaptive_config()), receiver;
  // Establish SRTT = 100, RTTVAR = 50 -> estimator RTO 300.
  sender.on_frame(receiver.on_frame(sender.send(payload(0), 0)).ack, 100);
  const SimTime estimator_rto = sender.rto();
  EXPECT_EQ(estimator_rto, 300);

  // Timeouts back the RTO off multiplicatively from the estimator value.
  sender.send(payload(1), 1000);
  sender.on_timer(1000 + estimator_rto);
  sender.on_timer(1000 + 3 * estimator_rto);
  EXPECT_EQ(sender.rto(), 4 * estimator_rto);

  // Progress (Karn forbids sampling here) resets to the estimator value —
  // not to rto_initial, which adaptation has replaced.
  serial::Bytes cum2{ReliableChannel::kAckFrame, 2, 0, 0, 0, 0, 0, 0, 0};
  auto progress = sender.on_frame(cum2, 9000);
  EXPECT_TRUE(progress.made_progress);
  EXPECT_EQ(progress.rtt_sample, 0);  // acked frame was retransmitted
  EXPECT_EQ(sender.rto(), estimator_rto);
}

TEST(ReliableChannel, AdaptiveTimerAgeGatesYoungFrames) {
  ReliableChannel sender(adaptive_config()), receiver;
  // Seed the estimator: RTO becomes 300.
  sender.on_frame(receiver.on_frame(sender.send(payload(0), 0)).ack, 100);
  ASSERT_EQ(sender.rto(), 300);

  sender.send(payload(1), 1000);  // old frame
  sender.send(payload(2), 1250);  // young frame, in flight only 50 µs...
  EXPECT_EQ(sender.next_deadline(), 1300);
  const auto resent = sender.on_timer(/*now=*/1300);
  // ...so only the old frame is resent; go-back-N would resend both.
  ASSERT_EQ(resent.size(), 1u);
  EXPECT_EQ(resent[0].seq, 1u);
  // The young frame's deadline is next (shifted by the backed-off RTO).
  EXPECT_EQ(sender.next_deadline(), 1250 + sender.rto());
}

// ---- ReliableTransport over the simulator ----

struct Collector final : PacketHandler {
  std::mutex mutex;
  std::map<SiteId, std::vector<serial::Bytes>> by_sender;
  void on_packet(Packet packet) override {
    std::lock_guard lock(mutex);
    by_sender[packet.from].push_back(std::move(packet.bytes));
  }
};

TEST(ReliableTransport, ExactlyOnceFifoOverLossySimWire) {
  constexpr SiteId kSites = 3;
  constexpr int kPerChannel = 40;
  sim::Simulator simulator;
  sim::UniformLatency latency(1000, 20000);
  SimTransport wire(simulator, latency, kSites, /*seed=*/7);
  SimTimerDriver timer(simulator);
  faults::FaultPlan plan;
  plan.default_faults.drop_rate = 0.3;
  plan.default_faults.dup_rate = 0.1;
  faults::FaultInjector injector(wire, timer, plan, /*seed=*/7);
  ReliableTransport reliable(injector, timer);

  std::vector<Collector> sinks(kSites);
  for (SiteId s = 0; s < kSites; ++s) reliable.attach(s, &sinks[s]);

  for (int i = 0; i < kPerChannel; ++i) {
    for (SiteId from = 0; from < kSites; ++from) {
      for (SiteId to = 0; to < kSites; ++to) {
        if (from == to) continue;
        serial::Bytes msg{static_cast<std::uint8_t>(from),
                          static_cast<std::uint8_t>(to),
                          static_cast<std::uint8_t>(i)};
        reliable.send(from, to, std::move(msg));
      }
    }
  }
  simulator.run();

  EXPECT_TRUE(reliable.quiescent());
  EXPECT_EQ(reliable.packets_sent(), reliable.packets_delivered());
  EXPECT_GT(injector.drops(), 0u);
  EXPECT_GT(reliable.retransmits(), 0u);
  EXPECT_GT(reliable.dup_suppressed(), 0u);
  for (SiteId to = 0; to < kSites; ++to) {
    for (SiteId from = 0; from < kSites; ++from) {
      if (from == to) continue;
      const auto& got = sinks[to].by_sender[from];
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kPerChannel))
          << "channel " << from << "->" << to;
      for (int i = 0; i < kPerChannel; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)][2], static_cast<std::uint8_t>(i))
            << "channel " << from << "->" << to;
      }
    }
  }
}

TEST(ReliableTransport, DeterministicUnderTheSimulator) {
  const auto run = [](std::uint64_t seed) {
    sim::Simulator simulator;
    sim::UniformLatency latency(1000, 20000);
    SimTransport wire(simulator, latency, 2, seed);
    SimTimerDriver timer(simulator);
    faults::FaultPlan plan = faults::FaultPlan::uniform_drop(0.4);
    faults::FaultInjector injector(wire, timer, plan, seed);
    ReliableTransport reliable(injector, timer);
    Collector sink0, sink1;
    reliable.attach(0, &sink0);
    reliable.attach(1, &sink1);
    for (std::uint8_t i = 0; i < 30; ++i) reliable.send(0, 1, payload(i));
    simulator.run();
    return std::tuple{injector.drops(), reliable.retransmits(),
                      reliable.frames_sent(), wire.packets_sent()};
  };
  EXPECT_EQ(run(5), run(5));   // same seed, same fault sequence
  EXPECT_NE(run(5), run(6));   // different seed, different faults
}

TEST(ReliableTransport, ZeroFaultPlanStillDeliversWithoutRetransmits) {
  sim::Simulator simulator;
  sim::UniformLatency latency(1000, 5000);
  SimTransport wire(simulator, latency, 2, 1);
  SimTimerDriver timer(simulator);
  ReliableTransport reliable(wire, timer);
  Collector sink0, sink1;
  reliable.attach(0, &sink0);
  reliable.attach(1, &sink1);
  for (std::uint8_t i = 0; i < 10; ++i) reliable.send(0, 1, payload(i));
  simulator.run();
  EXPECT_TRUE(reliable.quiescent());
  EXPECT_EQ(reliable.retransmits(), 0u);
  EXPECT_EQ(sink1.by_sender[0].size(), 10u);
  // One DATA + one ACK per packet on the wire.
  EXPECT_EQ(wire.packets_sent(), 20u);
}

TEST(ReliableTransport, AdaptiveRtoEliminatesSpuriousRetransmitsOnCleanWire) {
  // The fixed-RTO layer's drop-0 floor: a timer armed at first send would
  // fire while later pipelined frames are still legitimately in flight.
  // Adaptive mode age-gates retransmission per frame, so a clean wire must
  // see zero retransmits — while the estimator actually learns the RTT.
  sim::Simulator simulator;
  sim::UniformLatency latency(1000, 5000);
  SimTransport wire(simulator, latency, 2, 1);
  SimTimerDriver timer(simulator);
  ReliableConfig rc;
  rc.adaptive_rto = true;
  ReliableTransport reliable(wire, timer, rc);
  Collector sink0, sink1;
  reliable.attach(0, &sink0);
  reliable.attach(1, &sink1);
  for (std::uint8_t i = 0; i < 30; ++i) reliable.send(0, 1, payload(i));
  simulator.run();
  EXPECT_TRUE(reliable.quiescent());
  EXPECT_EQ(reliable.retransmits(), 0u);
  EXPECT_GT(reliable.rtt_samples(), 0u);
  EXPECT_EQ(sink1.by_sender[0].size(), 30u);
  EXPECT_EQ(wire.packets_sent(), 60u);  // one DATA + one ACK each, nothing more
}

TEST(ReliableTransport, SelectiveRepeatAmplifiesLessThanGoBackNUnderLoss) {
  const auto frames_with = [](ArqMode mode) {
    sim::Simulator simulator;
    sim::UniformLatency latency(1000, 20000);
    SimTransport wire(simulator, latency, 2, /*seed=*/5);
    SimTimerDriver timer(simulator);
    faults::FaultPlan plan = faults::FaultPlan::uniform_drop(0.4);
    faults::FaultInjector injector(wire, timer, plan, /*seed=*/5);
    ReliableConfig rc;
    rc.arq = mode;
    ReliableTransport reliable(injector, timer, rc);
    Collector sink0, sink1;
    reliable.attach(0, &sink0);
    reliable.attach(1, &sink1);
    for (std::uint8_t i = 0; i < 40; ++i) reliable.send(0, 1, payload(i));
    simulator.run();
    EXPECT_TRUE(reliable.quiescent());
    EXPECT_EQ(sink1.by_sender[0].size(), 40u);
    return std::pair{reliable.frames_sent(), reliable.retransmits()};
  };
  const auto [gbn_frames, gbn_retx] = frames_with(ArqMode::kGoBackN);
  const auto [sr_frames, sr_retx] = frames_with(ArqMode::kSelectiveRepeat);
  // Same wire, same fault sequence: selective repeat must resend strictly
  // less — go-back-N resends every unacked frame per timeout, SR only the
  // frames the SACKs say are actually missing.
  EXPECT_LT(sr_retx, gbn_retx);
  EXPECT_LT(sr_frames, gbn_frames);
}

TEST(ReliableTransport, MalformedWireFramesAreCountedAndDroppedNotFatal) {
  sim::Simulator simulator;
  sim::UniformLatency latency(1000, 5000);
  SimTransport wire(simulator, latency, 2, 1);
  SimTimerDriver timer(simulator);
  ReliableTransport reliable(wire, timer);
  Collector sink0, sink1;
  reliable.attach(0, &sink0);
  reliable.attach(1, &sink1);

  // Inject garbage below the reliability layer, as the wire would deliver
  // it: truncated frames and an unknown tag. None may crash or deliver.
  reliable.on_packet(Packet{1, 0, 0, serial::Bytes{}});
  reliable.on_packet(Packet{1, 0, 0, serial::Bytes{ReliableChannel::kDataFrame, 1, 2}});
  reliable.on_packet(Packet{1, 0, 0, serial::Bytes(9, 0x55)});  // unknown tag
  // A SACK whose declared list overruns the frame reaches the channel and
  // is rejected there (counted in the same aggregate).
  serial::Bytes bad_sack{ReliableChannel::kSackFrame, 0, 0, 0, 0, 0, 0, 0, 0, 4};
  reliable.on_packet(Packet{1, 0, 0, std::move(bad_sack)});
  EXPECT_EQ(reliable.malformed(), 4u);

  // Forged cumulative ACK for never-sent data: rejected, not applied.
  serial::Bytes forged{ReliableChannel::kAckFrame, 7, 0, 0, 0, 0, 0, 0, 0};
  reliable.on_packet(Packet{1, 0, 0, std::move(forged)});
  EXPECT_EQ(reliable.acks_rejected(), 1u);

  // The layer still works afterwards.
  for (std::uint8_t i = 0; i < 5; ++i) reliable.send(0, 1, payload(i));
  simulator.run();
  EXPECT_TRUE(reliable.quiescent());
  EXPECT_EQ(sink1.by_sender[0].size(), 5u);
}

// ---- ReliableTransport over real threads (the TSan target) ----

TEST(ReliableTransport, ExactlyOnceFifoOverLossyThreadWire) {
  constexpr SiteId kSites = 3;
  constexpr int kPerChannel = 25;
  ThreadTransport::Options topt;
  topt.max_delay_us = 2000;
  topt.seed = 11;
  ThreadTransport wire(kSites, topt);
  ThreadTimerDriver timer;
  faults::FaultPlan plan;
  plan.default_faults.drop_rate = 0.25;
  plan.default_faults.dup_rate = 0.1;
  faults::FaultInjector injector(wire, timer, plan, /*seed=*/11);
  ReliableConfig rc;
  rc.rto_initial = 20 * kMillisecond;  // real time: keep the test fast
  ReliableTransport reliable(injector, timer, rc);

  std::vector<Collector> sinks(kSites);
  for (SiteId s = 0; s < kSites; ++s) reliable.attach(s, &sinks[s]);
  wire.start();

  std::vector<std::thread> senders;
  for (SiteId from = 0; from < kSites; ++from) {
    senders.emplace_back([&, from] {
      for (int i = 0; i < kPerChannel; ++i) {
        for (SiteId to = 0; to < kSites; ++to) {
          if (from == to) continue;
          serial::Bytes msg{static_cast<std::uint8_t>(i)};
          reliable.send(from, to, std::move(msg));
        }
      }
    });
  }
  for (auto& t : senders) t.join();

  reliable.wait_quiescent();
  timer.stop();
  wire.quiesce();
  EXPECT_TRUE(reliable.quiescent());
  wire.stop();

  for (SiteId to = 0; to < kSites; ++to) {
    for (SiteId from = 0; from < kSites; ++from) {
      if (from == to) continue;
      const auto& got = sinks[to].by_sender[from];
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kPerChannel))
          << "channel " << from << "->" << to;
      for (int i = 0; i < kPerChannel; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)][0], static_cast<std::uint8_t>(i))
            << "channel " << from << "->" << to;
      }
    }
  }
}

}  // namespace
}  // namespace causim::net
