// Property tests for the reliability sublayer (net::ReliableChannel /
// net::ReliableTransport): retransmit-until-acked, deterministic
// exponential backoff with reset-on-progress, duplicate suppression, and
// in-order exactly-once release under adversarial drop / duplication /
// reordering — first on the pure per-channel state machine, then through
// the full transport stack over both substrates (the simulator and real
// threads; the threaded suites double as the TSan targets in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "faults/fault_injector.hpp"
#include "net/reliable_channel.hpp"
#include "net/sim_transport.hpp"
#include "net/thread_transport.hpp"
#include "net/timer.hpp"
#include "sim/latency.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace causim::net {
namespace {

serial::Bytes payload(std::uint8_t tag, std::size_t len = 4) {
  return serial::Bytes(len, tag);
}

// ---- ReliableChannel: the pure state machine ----

TEST(ReliableChannel, InOrderDeliveryReleasesImmediately) {
  ReliableChannel sender, receiver;
  for (std::uint8_t i = 0; i < 5; ++i) {
    const serial::Bytes frame = sender.send(payload(i));
    auto ingest = receiver.on_frame(frame);
    ASSERT_EQ(ingest.released.size(), 1u);
    EXPECT_EQ(ingest.released[0].seq, i);
    EXPECT_EQ(ingest.released[0].payload, payload(i));
    EXPECT_FALSE(ingest.was_duplicate);
    EXPECT_FALSE(ingest.ack.empty());
    // Feed the ack back: the sender's window must drain.
    auto acked = sender.on_frame(ingest.ack);
    EXPECT_TRUE(acked.was_ack);
    EXPECT_TRUE(acked.made_progress);
    EXPECT_EQ(sender.unacked(), 0u);
  }
}

TEST(ReliableChannel, RetransmitsEverythingUnackedUntilAcked) {
  ReliableChannel sender, receiver;
  sender.send(payload(0));
  sender.send(payload(1));
  sender.send(payload(2));
  EXPECT_TRUE(sender.timer_needed());

  // Two timeouts with nothing acked: all three frames resent both times.
  for (int round = 0; round < 2; ++round) {
    const auto frames = sender.on_timer();
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].seq, 0u);
    EXPECT_EQ(frames[2].seq, 2u);
  }
  EXPECT_EQ(sender.retransmit_count(), 6u);

  // Deliver one retransmitted copy of each; the cumulative ack clears all.
  ReliableChannel::Ingest last;
  for (const auto& f : sender.on_timer()) last = receiver.on_frame(f.bytes);
  sender.on_frame(last.ack);
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_FALSE(sender.timer_needed());
  EXPECT_TRUE(sender.on_timer().empty());
}

TEST(ReliableChannel, BackoffIsDeterministicAndCapped) {
  ReliableConfig config;
  config.rto_initial = 100;
  config.rto_max = 450;
  config.rto_backoff = 2.0;
  ReliableChannel a(config), b(config);
  a.send(payload(1));
  b.send(payload(1));
  std::vector<SimTime> seen_a, seen_b;
  for (int i = 0; i < 5; ++i) {
    seen_a.push_back(a.rto());
    seen_b.push_back(b.rto());
    a.on_timer();
    b.on_timer();
  }
  // Two identical channels walk the identical backoff sequence.
  EXPECT_EQ(seen_a, seen_b);
  EXPECT_EQ(seen_a, (std::vector<SimTime>{100, 200, 400, 450, 450}));
}

TEST(ReliableChannel, AckProgressResetsBackoff) {
  ReliableConfig config;
  config.rto_initial = 100;
  config.rto_max = 10000;
  ReliableChannel sender, receiver;
  ReliableChannel configured(config);
  configured.send(payload(0));
  configured.on_timer();
  configured.on_timer();
  EXPECT_EQ(configured.rto(), 400);

  configured.send(payload(1));
  // Receiver acks seq 0 only (ack value 1 = next expected).
  ReliableChannel peer(config);
  auto ingest = peer.on_frame(ReliableChannel(config).send(payload(0)));
  auto progress = configured.on_frame(ingest.ack);
  EXPECT_TRUE(progress.made_progress);
  EXPECT_EQ(configured.rto(), 100);  // reset, not 800
  EXPECT_EQ(configured.unacked(), 1u);

  // A duplicate ack (no new progress) must NOT reset anything again.
  configured.on_timer();
  EXPECT_EQ(configured.rto(), 200);
  auto stale = configured.on_frame(ingest.ack);
  EXPECT_FALSE(stale.made_progress);
  EXPECT_EQ(configured.rto(), 200);
}

TEST(ReliableChannel, DuplicateFramesSuppressedButReAcked) {
  ReliableChannel sender, receiver;
  const serial::Bytes frame = sender.send(payload(9));
  auto first = receiver.on_frame(frame);
  ASSERT_EQ(first.released.size(), 1u);

  auto second = receiver.on_frame(frame);
  EXPECT_TRUE(second.was_duplicate);
  EXPECT_TRUE(second.released.empty());
  // The duplicate usually means our ack was lost — it must be re-acked.
  EXPECT_FALSE(second.ack.empty());
  EXPECT_EQ(receiver.dup_suppressed(), 1u);
  EXPECT_EQ(receiver.next_expected(), 1u);
}

TEST(ReliableChannel, OutOfOrderArrivalsBufferAndReleaseInOrder) {
  ReliableChannel sender, receiver;
  std::vector<serial::Bytes> frames;
  for (std::uint8_t i = 0; i < 4; ++i) frames.push_back(sender.send(payload(i)));

  // Arrival order 2, 3, 0, 1.
  EXPECT_TRUE(receiver.on_frame(frames[2]).released.empty());
  EXPECT_TRUE(receiver.on_frame(frames[3]).released.empty());
  EXPECT_EQ(receiver.reorder_buffered(), 2u);

  auto burst = receiver.on_frame(frames[0]);
  ASSERT_EQ(burst.released.size(), 1u);  // 0 releases; 1 still missing
  EXPECT_EQ(burst.released[0].seq, 0u);

  auto rest = receiver.on_frame(frames[1]);
  ASSERT_EQ(rest.released.size(), 3u);  // 1 fills the gap: 1, 2, 3
  EXPECT_EQ(rest.released[0].seq, 1u);
  EXPECT_EQ(rest.released[2].seq, 3u);
  EXPECT_EQ(receiver.reorder_buffered(), 0u);
}

TEST(ReliableChannel, CumulativeAckClearsEverythingBelow) {
  ReliableChannel sender, receiver;
  std::vector<serial::Bytes> frames;
  for (std::uint8_t i = 0; i < 5; ++i) frames.push_back(sender.send(payload(i)));
  // Deliver 0..2; the third ack is cumulative for all three.
  ReliableChannel::Ingest ingest;
  for (int i = 0; i < 3; ++i) ingest = receiver.on_frame(frames[i]);
  sender.on_frame(ingest.ack);
  EXPECT_EQ(sender.unacked(), 2u);  // 3, 4 outstanding
}

/// Adversarial medium: every frame in flight may be delivered, dropped,
/// duplicated, or reordered at the whim of a seeded RNG, with sender
/// timeouts interleaved. Whatever happens, the receiver must hand up
/// exactly the sent payload sequence, in order, exactly once.
TEST(ReliableChannel, ExactlyOnceFifoUnderAdversarialMedium) {
  constexpr int kMessages = 60;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    sim::Pcg32 rng(seed);
    ReliableChannel sender, receiver;
    std::vector<serial::Bytes> medium;       // data frames in flight
    std::vector<serial::Bytes> ack_medium;   // ack frames in flight
    std::vector<std::uint64_t> delivered;    // seqs released to the app
    int sent = 0;

    const auto step = [&] {
      const double roll = rng.uniform();
      if (roll < 0.30 && sent < kMessages) {
        medium.push_back(sender.send(payload(static_cast<std::uint8_t>(sent))));
        ++sent;
      } else if (roll < 0.55 && !medium.empty()) {
        // Deliver a random in-flight data frame (reordering).
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(medium.size()) - 1));
        auto ingest = receiver.on_frame(medium[pick]);
        medium.erase(medium.begin() + static_cast<std::ptrdiff_t>(pick));
        for (const auto& r : ingest.released) delivered.push_back(r.seq);
        ack_medium.push_back(ingest.ack);
      } else if (roll < 0.65 && !medium.empty()) {
        // Drop a random data frame.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(medium.size()) - 1));
        medium.erase(medium.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (roll < 0.72 && !medium.empty()) {
        // Duplicate a random data frame.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(medium.size()) - 1));
        medium.push_back(medium[pick]);
      } else if (roll < 0.85 && !ack_medium.empty()) {
        // Deliver (or, below, lose) a random ack.
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ack_medium.size()) - 1));
        sender.on_frame(ack_medium[pick]);
        ack_medium.erase(ack_medium.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (roll < 0.90 && !ack_medium.empty()) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ack_medium.size()) - 1));
        ack_medium.erase(ack_medium.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        // Retransmission timeout: everything unacked re-enters the medium.
        for (auto& f : sender.on_timer()) medium.push_back(std::move(f.bytes));
      }
    };

    // Run until all messages are sent, delivered, and acked (the timeout
    // arm guarantees progress, so this always terminates).
    int stall_guard = 0;
    while (sent < kMessages || sender.unacked() != 0 ||
           delivered.size() < static_cast<std::size_t>(kMessages)) {
      step();
      ASSERT_LT(++stall_guard, 200000) << "seed " << seed << " wedged";
    }

    ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kMessages))
        << "seed " << seed;
    for (int i = 0; i < kMessages; ++i) {
      EXPECT_EQ(delivered[static_cast<std::size_t>(i)], static_cast<std::uint64_t>(i))
          << "seed " << seed;
    }
  }
}

// ---- ReliableTransport over the simulator ----

struct Collector final : PacketHandler {
  std::mutex mutex;
  std::map<SiteId, std::vector<serial::Bytes>> by_sender;
  void on_packet(Packet packet) override {
    std::lock_guard lock(mutex);
    by_sender[packet.from].push_back(std::move(packet.bytes));
  }
};

TEST(ReliableTransport, ExactlyOnceFifoOverLossySimWire) {
  constexpr SiteId kSites = 3;
  constexpr int kPerChannel = 40;
  sim::Simulator simulator;
  sim::UniformLatency latency(1000, 20000);
  SimTransport wire(simulator, latency, kSites, /*seed=*/7);
  SimTimerDriver timer(simulator);
  faults::FaultPlan plan;
  plan.default_faults.drop_rate = 0.3;
  plan.default_faults.dup_rate = 0.1;
  faults::FaultInjector injector(wire, timer, plan, /*seed=*/7);
  ReliableTransport reliable(injector, timer);

  std::vector<Collector> sinks(kSites);
  for (SiteId s = 0; s < kSites; ++s) reliable.attach(s, &sinks[s]);

  for (int i = 0; i < kPerChannel; ++i) {
    for (SiteId from = 0; from < kSites; ++from) {
      for (SiteId to = 0; to < kSites; ++to) {
        if (from == to) continue;
        serial::Bytes msg{static_cast<std::uint8_t>(from),
                          static_cast<std::uint8_t>(to),
                          static_cast<std::uint8_t>(i)};
        reliable.send(from, to, std::move(msg));
      }
    }
  }
  simulator.run();

  EXPECT_TRUE(reliable.quiescent());
  EXPECT_EQ(reliable.packets_sent(), reliable.packets_delivered());
  EXPECT_GT(injector.drops(), 0u);
  EXPECT_GT(reliable.retransmits(), 0u);
  EXPECT_GT(reliable.dup_suppressed(), 0u);
  for (SiteId to = 0; to < kSites; ++to) {
    for (SiteId from = 0; from < kSites; ++from) {
      if (from == to) continue;
      const auto& got = sinks[to].by_sender[from];
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kPerChannel))
          << "channel " << from << "->" << to;
      for (int i = 0; i < kPerChannel; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)][2], static_cast<std::uint8_t>(i))
            << "channel " << from << "->" << to;
      }
    }
  }
}

TEST(ReliableTransport, DeterministicUnderTheSimulator) {
  const auto run = [](std::uint64_t seed) {
    sim::Simulator simulator;
    sim::UniformLatency latency(1000, 20000);
    SimTransport wire(simulator, latency, 2, seed);
    SimTimerDriver timer(simulator);
    faults::FaultPlan plan = faults::FaultPlan::uniform_drop(0.4);
    faults::FaultInjector injector(wire, timer, plan, seed);
    ReliableTransport reliable(injector, timer);
    Collector sink0, sink1;
    reliable.attach(0, &sink0);
    reliable.attach(1, &sink1);
    for (std::uint8_t i = 0; i < 30; ++i) reliable.send(0, 1, payload(i));
    simulator.run();
    return std::tuple{injector.drops(), reliable.retransmits(),
                      reliable.frames_sent(), wire.packets_sent()};
  };
  EXPECT_EQ(run(5), run(5));   // same seed, same fault sequence
  EXPECT_NE(run(5), run(6));   // different seed, different faults
}

TEST(ReliableTransport, ZeroFaultPlanStillDeliversWithoutRetransmits) {
  sim::Simulator simulator;
  sim::UniformLatency latency(1000, 5000);
  SimTransport wire(simulator, latency, 2, 1);
  SimTimerDriver timer(simulator);
  ReliableTransport reliable(wire, timer);
  Collector sink0, sink1;
  reliable.attach(0, &sink0);
  reliable.attach(1, &sink1);
  for (std::uint8_t i = 0; i < 10; ++i) reliable.send(0, 1, payload(i));
  simulator.run();
  EXPECT_TRUE(reliable.quiescent());
  EXPECT_EQ(reliable.retransmits(), 0u);
  EXPECT_EQ(sink1.by_sender[0].size(), 10u);
  // One DATA + one ACK per packet on the wire.
  EXPECT_EQ(wire.packets_sent(), 20u);
}

// ---- ReliableTransport over real threads (the TSan target) ----

TEST(ReliableTransport, ExactlyOnceFifoOverLossyThreadWire) {
  constexpr SiteId kSites = 3;
  constexpr int kPerChannel = 25;
  ThreadTransport::Options topt;
  topt.max_delay_us = 2000;
  topt.seed = 11;
  ThreadTransport wire(kSites, topt);
  ThreadTimerDriver timer;
  faults::FaultPlan plan;
  plan.default_faults.drop_rate = 0.25;
  plan.default_faults.dup_rate = 0.1;
  faults::FaultInjector injector(wire, timer, plan, /*seed=*/11);
  ReliableConfig rc;
  rc.rto_initial = 20 * kMillisecond;  // real time: keep the test fast
  ReliableTransport reliable(injector, timer, rc);

  std::vector<Collector> sinks(kSites);
  for (SiteId s = 0; s < kSites; ++s) reliable.attach(s, &sinks[s]);
  wire.start();

  std::vector<std::thread> senders;
  for (SiteId from = 0; from < kSites; ++from) {
    senders.emplace_back([&, from] {
      for (int i = 0; i < kPerChannel; ++i) {
        for (SiteId to = 0; to < kSites; ++to) {
          if (from == to) continue;
          serial::Bytes msg{static_cast<std::uint8_t>(i)};
          reliable.send(from, to, std::move(msg));
        }
      }
    });
  }
  for (auto& t : senders) t.join();

  reliable.wait_quiescent();
  timer.stop();
  wire.quiesce();
  EXPECT_TRUE(reliable.quiescent());
  wire.stop();

  for (SiteId to = 0; to < kSites; ++to) {
    for (SiteId from = 0; from < kSites; ++from) {
      if (from == to) continue;
      const auto& got = sinks[to].by_sender[from];
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kPerChannel))
          << "channel " << from << "->" << to;
      for (int i = 0; i < kPerChannel; ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(i)][0], static_cast<std::uint8_t>(i))
            << "channel " << from << "->" << to;
      }
    }
  }
}

}  // namespace
}  // namespace causim::net
