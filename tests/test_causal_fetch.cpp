// Tests for the causal-fetch extension: the paper's RemoteFetch (FM with
// no meta-data, Table I) can return values causally older than the
// reader's own past; the extension's guarded fetch cannot.
#include <gtest/gtest.h>

#include <deque>

#include "bench_support/experiment.hpp"
#include "causal/factory.hpp"
#include "causal/full_track.hpp"
#include "causal/opt_track.hpp"
#include "checker/causal_checker.hpp"
#include "dsm/placement.hpp"
#include "dsm/site_runtime.hpp"

namespace causim::dsm {
namespace {

/// Transport double that releases packets on demand (copy of the one in
/// test_site_runtime; duplicated deliberately to keep test binaries
/// self-contained).
class ManualTransport final : public net::Transport {
 public:
  explicit ManualTransport(SiteId n) : handlers_(n, nullptr) {}

  void attach(SiteId site, net::PacketHandler* handler) override {
    handlers_[site] = handler;
  }
  void send(SiteId from, SiteId to, serial::Bytes bytes) override {
    ++sent_;
    outbox_.push_back(net::Packet{from, to, 0, std::move(bytes)});
  }
  SiteId size() const override { return static_cast<SiteId>(handlers_.size()); }
  std::uint64_t packets_sent() const override { return sent_; }
  std::uint64_t packets_delivered() const override { return delivered_; }

  std::size_t in_flight() const { return outbox_.size(); }
  SiteId to_of(std::size_t i) const { return outbox_[i].to; }
  SiteId from_of(std::size_t i) const { return outbox_[i].from; }

  void deliver(std::size_t index) {
    net::Packet p = std::move(outbox_[index]);
    outbox_.erase(outbox_.begin() + static_cast<std::ptrdiff_t>(index));
    ++delivered_;
    handlers_[p.to]->on_packet(std::move(p));
  }
  void deliver_all() {
    while (!outbox_.empty()) deliver(0);
  }
  /// Delivers the oldest packet on channel (from → to); false if none.
  bool deliver_channel(SiteId from, SiteId to) {
    for (std::size_t i = 0; i < outbox_.size(); ++i) {
      if (outbox_[i].from == from && outbox_[i].to == to) {
        deliver(i);
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<net::PacketHandler*> handlers_;
  std::deque<net::Packet> outbox_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

/// The staleness scenario needs two variables sharing a replica pair
/// {r, x}, a reader s outside it with fetch_site(u) = r and
/// fetch_site(v) = x.
struct Scenario {
  VarId u = kInvalidVar;
  VarId v = kInvalidVar;
  SiteId r = kInvalidSite;
  SiteId x = kInvalidSite;
  SiteId s = kInvalidSite;
};

constexpr SiteId kN = 5;
constexpr VarId kQ = 80;

std::optional<Scenario> find_scenario(const Placement& placement) {
  for (VarId u = 0; u < kQ; ++u) {
    for (VarId v = 0; v < kQ; ++v) {
      if (u == v || !(placement.replicas(u) == placement.replicas(v))) continue;
      const auto pair = placement.replicas(u).to_vector();
      for (SiteId s = 0; s < kN; ++s) {
        if (placement.replicated_at(u, s)) continue;
        const SiteId fu = placement.fetch_site(u, s);
        const SiteId fv = placement.fetch_site(v, s);
        if (fu != fv) {
          Scenario sc;
          sc.u = u;
          sc.v = v;
          sc.r = fu;
          sc.x = fv;
          sc.s = s;
          (void)pair;
          return sc;
        }
      }
    }
  }
  return std::nullopt;
}

class CausalFetchScenario : public ::testing::TestWithParam<
                                std::tuple<causal::ProtocolKind, bool>> {};

TEST_P(CausalFetchScenario, StaleWithoutGuardFreshWithGuard) {
  const auto [kind, causal_fetch] = GetParam();
  const Placement placement(kN, kQ, 2, /*seed=*/17);
  const auto scenario = find_scenario(placement);
  ASSERT_TRUE(scenario.has_value()) << "placement seed needs adjusting";
  const auto [u, v, r, x, s] = *scenario;

  ManualTransport transport(kN);
  checker::HistoryRecorder history;
  std::vector<std::unique_ptr<SiteRuntime>> sites;
  for (SiteId i = 0; i < kN; ++i) {
    sites.push_back(std::make_unique<SiteRuntime>(
        i, placement, transport, causal::make_protocol(kind, i, kN), &history,
        serial::ClockWidth::k4Bytes, /*now_fn=*/nullptr, causal_fetch));
    transport.attach(i, sites.back().get());
  }

  // 1. Replica r writes u = w1 (applies locally; SM r→x stays in flight).
  sites[r]->write(u, 0);

  // 2. Reader s fetches u from r — acquiring w1 into its causal past.
  bool read_u_done = false;
  sites[s]->read(u, [&](Value, WriteId w) {
    read_u_done = true;
    EXPECT_EQ(w.writer, r);
  });
  ASSERT_TRUE(transport.deliver_channel(s, r));  // FM
  ASSERT_TRUE(transport.deliver_channel(r, s));  // RM
  ASSERT_TRUE(read_u_done);

  // 3. s writes v = w2; w2 causally follows w1. SM s→x arrives at x but
  //    cannot apply (w1 still missing at x).
  sites[s]->write(v, 0);
  ASSERT_TRUE(transport.deliver_channel(s, x));  // SM(w2) — FIFO: sent first
  EXPECT_EQ(sites[x]->pending_updates(), 1u);

  // 4. s reads v from x while x is causally behind.
  bool read_v_done = false;
  WriteId returned;
  sites[s]->read(v, [&](Value, WriteId w) {
    read_v_done = true;
    returned = w;
  });
  ASSERT_TRUE(transport.deliver_channel(s, x));  // FM (FIFO after the SM)

  if (causal_fetch) {
    // Guarded: x holds the fetch until it catches up.
    EXPECT_FALSE(read_v_done);
    EXPECT_EQ(sites[x]->pending_remote_fetches(), 1u);
    transport.deliver_all();  // release SM(w1) r→x, cascade, serve, reply
    ASSERT_TRUE(read_v_done);
    EXPECT_EQ(returned.writer, s) << "guarded fetch must return s's own write";
  } else {
    // Paper behaviour: x answers immediately with the stale replica value.
    ASSERT_TRUE(transport.deliver_channel(x, s));  // RM
    ASSERT_TRUE(read_v_done);
    EXPECT_TRUE(is_null(returned)) << "x had not applied w2 yet";
    transport.deliver_all();
  }

  // Epilogue: drain everything and check the history.
  transport.deliver_all();
  const auto result = checker::check_causal_consistency(
      history.events(), kN, [&](VarId var) { return placement.replicas(var); });
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? ""
                                                         : result.violations.front());
  EXPECT_EQ(result.stale_reads, causal_fetch ? 0u : 1u);

  // Strict mode turns the stale read into a violation.
  checker::CheckOptions strict;
  strict.strict_read_freshness = true;
  const auto strict_result = checker::check_causal_consistency(
      history.events(), kN, [&](VarId var) { return placement.replicas(var); }, strict);
  EXPECT_EQ(strict_result.ok(), causal_fetch);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, CausalFetchScenario,
    ::testing::Combine(::testing::Values(causal::ProtocolKind::kFullTrack,
                                         causal::ProtocolKind::kOptTrack),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<causal::ProtocolKind, bool>>& param_info) {
      std::string name = to_string(std::get<0>(param_info.param));
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + (std::get<1>(param_info.param) ? "_guarded" : "_paper");
    });

TEST(CausalFetchGuard, FullTrackColumnRoundTrip) {
  causal::FullTrack reader(0, 4);
  serial::ByteWriter sm(serial::ClockWidth::k4Bytes);
  reader.local_write(0, Value{1, 0}, DestSet(4, {0, 2, 3}), sm);

  serial::ByteWriter guard_bytes(serial::ClockWidth::k4Bytes);
  reader.fetch_guard_meta(/*responder=*/2, guard_bytes);

  causal::FullTrack responder(2, 4);
  serial::ByteReader r(guard_bytes.bytes());
  const auto guard = responder.decode_fetch_guard(r);
  ASSERT_NE(guard, nullptr);
  EXPECT_FALSE(responder.fetch_ready(*guard)) << "responder has not applied the write";
}

TEST(CausalFetchGuard, OptTrackGuardOnlyCarriesResponderEntries) {
  causal::OptTrack reader(0, 4);
  serial::ByteWriter sm1(serial::ClockWidth::k4Bytes);
  reader.local_write(0, Value{1, 0}, DestSet(4, {0, 1}), sm1);
  serial::ByteWriter sm2(serial::ClockWidth::k4Bytes);
  reader.local_write(1, Value{2, 0}, DestSet(4, {0, 2}), sm2);

  serial::ByteWriter guard_bytes(serial::ClockWidth::k4Bytes);
  reader.fetch_guard_meta(/*responder=*/2, guard_bytes);
  serial::ByteReader r(guard_bytes.bytes());
  const causal::KsLog guard = causal::KsLog::deserialize(r);
  EXPECT_EQ(guard.size(), 1u);  // only the write destined to site 2
  EXPECT_NE(guard.find(WriteId{0, 2}), nullptr);

  causal::OptTrack responder(2, 4);
  serial::ByteReader r2(guard_bytes.bytes());
  const auto decoded = responder.decode_fetch_guard(r2);
  ASSERT_NE(decoded, nullptr);
  EXPECT_FALSE(responder.fetch_ready(*decoded));
}

class GuardedFetchGrid
    : public ::testing::TestWithParam<std::tuple<causal::ProtocolKind, SiteId,
                                                 std::uint64_t>> {};

TEST_P(GuardedFetchGrid, StrictFreshnessHoldsWithGuardsOn) {
  // With causal fetch enabled, every read — local or remote — must be
  // causally fresh: the strict checker mode becomes a hard invariant.
  const auto [kind, n, seed] = GetParam();
  dsm::ClusterConfig config;
  config.sites = n;
  config.variables = 12;
  config.replication = bench_support::partial_replication_factor(n);
  config.protocol = kind;
  config.seed = seed;
  config.causal_fetch = true;
  config.latency_lo = 1 * kMillisecond;
  config.latency_hi = 2500 * kMillisecond;

  workload::WorkloadParams wl;
  wl.variables = 12;
  wl.write_rate = 0.5;
  wl.gap_lo = 5 * kMillisecond;   // fast clients: maximal staleness pressure
  wl.gap_hi = 100 * kMillisecond;
  wl.ops_per_site = 120;
  wl.zipf_s = 1.0;
  wl.seed = seed;

  dsm::Cluster cluster(config);
  cluster.execute(workload::generate_schedule(n, wl));
  checker::CheckOptions strict;
  strict.strict_read_freshness = true;
  const auto result = cluster.check(strict);
  EXPECT_TRUE(result.ok()) << to_string(kind) << " n=" << n << " seed=" << seed << ": "
                           << (result.violations.empty() ? ""
                                                         : result.violations.front());
  EXPECT_EQ(result.stale_reads, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GuardedFetchGrid,
    ::testing::Combine(::testing::Values(causal::ProtocolKind::kFullTrack,
                                         causal::ProtocolKind::kOptTrack),
                       ::testing::Values<SiteId>(5, 8),
                       ::testing::Values(1ULL, 2ULL, 3ULL)),
    [](const ::testing::TestParamInfo<std::tuple<causal::ProtocolKind, SiteId,
                                                 std::uint64_t>>& param_info) {
      std::string name = to_string(std::get<0>(param_info.param));
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_n" + std::to_string(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(CausalFetch, EndToEndClusterRunStaysConsistent) {
  bench_support::ExperimentParams params;
  params.protocol = causal::ProtocolKind::kOptTrack;
  params.sites = 8;
  params.replication = 2;
  params.write_rate = 0.5;
  params.ops_per_site = 120;
  params.seeds = {5};
  params.check = true;

  // The flag is on ClusterConfig; run via a hand-built cluster.
  dsm::ClusterConfig config;
  config.sites = params.sites;
  config.variables = params.variables;
  config.replication = params.replication;
  config.protocol = params.protocol;
  config.seed = 5;
  config.causal_fetch = true;
  config.latency_lo = 1 * kMillisecond;
  config.latency_hi = 2000 * kMillisecond;

  workload::WorkloadParams wl;
  wl.variables = params.variables;
  wl.write_rate = params.write_rate;
  wl.ops_per_site = params.ops_per_site;
  wl.seed = 5;

  dsm::Cluster cluster(config);
  cluster.execute(workload::generate_schedule(params.sites, wl));
  checker::CheckOptions strict;
  strict.strict_read_freshness = true;
  const auto result = cluster.check(strict);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? ""
                                                         : result.violations.front());
  EXPECT_EQ(result.stale_reads, 0u);
}

}  // namespace
}  // namespace causim::dsm
