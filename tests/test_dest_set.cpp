// Unit tests for DestSet (destination lists / bitsets).
#include <gtest/gtest.h>

#include "common/dest_set.hpp"

namespace causim {
namespace {

TEST(DestSet, StartsEmpty) {
  DestSet d(10);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.count(), 0);
  EXPECT_EQ(d.universe_size(), 10);
  for (SiteId s = 0; s < 10; ++s) EXPECT_FALSE(d.contains(s));
}

TEST(DestSet, InsertEraseContains) {
  DestSet d(10);
  d.insert(3);
  d.insert(7);
  EXPECT_TRUE(d.contains(3));
  EXPECT_TRUE(d.contains(7));
  EXPECT_FALSE(d.contains(4));
  EXPECT_EQ(d.count(), 2);
  d.erase(3);
  EXPECT_FALSE(d.contains(3));
  EXPECT_EQ(d.count(), 1);
  d.erase(3);  // idempotent
  EXPECT_EQ(d.count(), 1);
}

TEST(DestSet, EraseOutOfRangeIsNoop) {
  DestSet d(4, {1, 2});
  d.erase(99);
  EXPECT_EQ(d.count(), 2);
}

TEST(DestSet, AllClearsTailBits) {
  for (const SiteId n : {1, 5, 63, 64, 65, 128, 130}) {
    const DestSet d = DestSet::all(n);
    EXPECT_EQ(d.count(), n) << "n=" << n;
    EXPECT_TRUE(d.contains(n - 1));
    EXPECT_FALSE(d.contains(n));
  }
}

TEST(DestSet, SetOperations) {
  const DestSet a(8, {0, 1, 2, 3});
  const DestSet b(8, {2, 3, 4, 5});
  EXPECT_EQ((a | b), DestSet(8, {0, 1, 2, 3, 4, 5}));
  EXPECT_EQ((a & b), DestSet(8, {2, 3}));
  EXPECT_EQ((a - b), DestSet(8, {0, 1}));
  EXPECT_EQ((b - a), DestSet(8, {4, 5}));
}

TEST(DestSet, SubsetAndIntersects) {
  const DestSet a(8, {1, 2});
  const DestSet b(8, {1, 2, 3});
  const DestSet c(8, {4, 5});
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(DestSet(8).is_subset_of(c));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
}

TEST(DestSet, ForEachVisitsInOrder) {
  const DestSet d(80, {0, 17, 63, 64, 79});
  std::vector<SiteId> seen;
  d.for_each([&](SiteId s) { seen.push_back(s); });
  EXPECT_EQ(seen, (std::vector<SiteId>{0, 17, 63, 64, 79}));
  EXPECT_EQ(d.to_vector(), seen);
}

TEST(DestSet, WireBytesTracksMembership) {
  DestSet d(40);
  EXPECT_EQ(d.wire_bytes(), 4u);  // universe + count
  d.insert(1);
  d.insert(2);
  EXPECT_EQ(d.wire_bytes(), 4u + 2 * 2);
  d.erase(1);
  EXPECT_EQ(d.wire_bytes(), 4u + 2);
}

TEST(DestSet, EqualityRequiresSameUniverse) {
  EXPECT_FALSE(DestSet(4) == DestSet(5));
  EXPECT_TRUE(DestSet(4, {1}) == DestSet(4, {1}));
  EXPECT_FALSE(DestSet(4, {1}) == DestSet(4, {2}));
}

using DestSetDeath = DestSet;

TEST(DestSetDeathTest, InsertOutOfRangePanics) {
  DestSet d(4);
  EXPECT_DEATH(d.insert(4), "outside universe");
}

TEST(DestSetDeathTest, UniverseMismatchPanics) {
  DestSet a(4);
  const DestSet b(5);
  EXPECT_DEATH(a |= b, "universe mismatch");
}

}  // namespace
}  // namespace causim
