// serial::BufferPool unit tests plus the allocation bound the pooled
// encode path promises: once warm, encoding an Envelope into a pooled
// frame and recycling it performs zero heap allocations per message.
//
// The bound is measured with replacement global operator new/delete that
// count while a flag is up — no malloc hooks, no sampling, an exact count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "dsm/envelope.hpp"
#include "net/batching_transport.hpp"
#include "net/reliable_channel.hpp"
#include "net/sim_transport.hpp"
#include "net/timer.hpp"
#include "serial/buffer_pool.hpp"
#include "serial/writer.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace causim::serial {
namespace {

TEST(BufferPool, AcquireStartsEmptyAndCountsMisses) {
  BufferPool pool;
  const Bytes b = pool.acquire();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
}

TEST(BufferPool, ReleaseRecyclesCapacity) {
  BufferPool pool;
  Bytes b = pool.acquire();
  b.resize(256);
  const std::uint8_t* data = b.data();
  pool.release(std::move(b));
  EXPECT_EQ(pool.pooled(), 1u);

  const Bytes again = pool.acquire();
  EXPECT_TRUE(again.empty());  // contents are discarded...
  EXPECT_GE(again.capacity(), 256u);  // ...the capacity is what recycles
  EXPECT_EQ(again.data(), data);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(BufferPool, ZeroCapacityReleaseIsSkipped) {
  BufferPool pool;
  pool.release(Bytes{});
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, CopyProducesPooledDuplicate) {
  BufferPool pool;
  Bytes warm(64, 0xAB);
  pool.release(std::move(warm));

  const std::uint8_t src[] = {1, 2, 3, 4};
  const Bytes out = pool.copy(src, sizeof(src));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[3], 4u);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(BufferPool, PooledEncodePathIsAllocationFreeOnceWarm) {
  BufferPool pool;

  dsm::Envelope env;
  env.kind = MessageKind::kSM;
  env.sender = 3;
  env.var = 17;
  env.value.id = 42;
  env.value.payload_bytes = 64;
  env.write.writer = 3;
  env.write.clock = 9;
  env.meta.assign(96, 0x5C);  // a realistic piggyback block

  const auto encode_once = [&] {
    ByteWriter w(ClockWidth::k8Bytes, pool.acquire());
    env.encode_into(w);
    pool.release(w.take());
  };

  // Warm-up: the first round grows the pooled buffer to frame size.
  for (int i = 0; i < 8; ++i) encode_once();

  g_allocations.store(0);
  g_counting.store(true);
  for (int i = 0; i < 1000; ++i) encode_once();
  g_counting.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state pooled encode must not touch the heap";
}

TEST(BufferPool, ReliableStackSteadyStateDrawsNothingNewFromThePool) {
  // Regression for the send-path leak: ReliableTransport::send used to
  // copy the app payload into the DATA frame and then destroy the caller's
  // pooled buffer without releasing it, draining the pool by one buffer
  // per message — so steady state kept missing (and allocating) forever.
  // With the recycle in place, a warmed-up stack serves every buffer of
  // the reliable path (payload, DATA frame, retransmission copy, reorder
  // slot, ACK) from the free list: the miss counter goes flat.
  sim::Simulator simulator;
  sim::UniformLatency latency(1000, 5000);
  net::SimTransport wire(simulator, latency, 2, 1);
  net::SimTimerDriver timer(simulator);
  net::ReliableTransport reliable(wire, timer);
  BufferPool pool;
  reliable.set_buffer_pool(&pool);

  // The app layer above the stack recycles what it is handed, exactly like
  // SiteRuntime's receive path.
  struct Recycler final : net::PacketHandler {
    BufferPool* pool = nullptr;
    std::uint64_t delivered = 0;
    void on_packet(net::Packet packet) override {
      ++delivered;
      pool->release(std::move(packet.bytes));
    }
  };
  Recycler sink0, sink1;
  sink0.pool = sink1.pool = &pool;
  reliable.attach(0, &sink0);
  reliable.attach(1, &sink1);

  const auto round = [&] {
    for (int i = 0; i < 50; ++i) {
      Bytes payload = pool.acquire();
      payload.assign(64, static_cast<std::uint8_t>(i));
      reliable.send(0, 1, std::move(payload));
    }
    simulator.run();
  };

  round();  // warm-up: the pool grows to the stack's peak working set
  round();
  const std::uint64_t warm_misses = pool.misses();
  EXPECT_GT(warm_misses, 0u);  // the warm-up really did populate the pool
  for (int i = 0; i < 3; ++i) round();
  EXPECT_EQ(pool.misses(), warm_misses)
      << "steady-state reliable path drew new buffers from the heap: the "
         "send-side recycle regressed";
  EXPECT_EQ(sink1.delivered, 250u);
  EXPECT_EQ(reliable.retransmits(), 0u);  // clean wire: pure steady state
}

TEST(BufferPool, CoalescingRoundTripIsAllocationFreeOnceWarm) {
  // The batching edge promises the same per-message bound the plain
  // encode path holds: once the pool is warm, appending a pooled frame,
  // flushing the batch, decoding it and copying every sub-message back
  // out of the pool touches the heap zero times.
  BufferPool pool;
  net::BatchConfig config;
  config.enabled = true;
  config.max_messages = 8;
  net::BatchCoalescer coalescer(config);
  coalescer.set_buffer_pool(&pool);

  dsm::Envelope env;
  env.kind = MessageKind::kSM;
  env.sender = 3;
  env.var = 17;
  env.value.id = 42;
  env.value.payload_bytes = 64;
  env.write.writer = 3;
  env.write.clock = 9;
  env.meta.assign(96, 0x5C);

  const auto round = [&] {
    std::optional<net::BatchCoalescer::Frame> frame;
    for (int i = 0; i < 8; ++i) {
      ByteWriter w(ClockWidth::k8Bytes, pool.acquire());
      env.encode_into(w);
      auto flushed = coalescer.append(w.take());
      if (flushed.has_value()) frame = std::move(flushed);
    }
    EXPECT_TRUE(frame.has_value());  // the 8th append trips max_messages
    if (!frame.has_value()) return;
    // Receive side: every sub-message is a pooled copy, recycled like
    // SiteRuntime recycles what it is handed; the frame itself recycles
    // too.
    net::BatchCoalescer::try_decode(
        frame->bytes, [&pool](const std::uint8_t* data, std::size_t len) {
          pool.release(pool.copy(data, len));
        });
    pool.release(std::move(frame->bytes));
  };

  for (int i = 0; i < 8; ++i) round();  // warm-up

  g_allocations.store(0);
  g_counting.store(true);
  for (int i = 0; i < 500; ++i) round();
  g_counting.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state coalescing must not touch the heap";
}

TEST(BufferPool, BatchedReliableStackMissesStayFlatAcrossLongRun) {
  // The full tower the coalescing lane ships: batching above the reliable
  // layer over a simulated wire, everything sharing one pool. After
  // warm-up the pool serves the whole working set — batch frames, DATA
  // frames, ACKs, sub-message copies — so the miss counter goes flat no
  // matter how many more rounds run.
  sim::Simulator simulator;
  sim::UniformLatency latency(1000, 5000);
  net::SimTransport wire(simulator, latency, 2, 1);
  net::SimTimerDriver timer(simulator);
  net::ReliableTransport reliable(wire, timer);
  net::BatchConfig config;
  config.enabled = true;
  config.max_messages = 10;
  config.max_delay = kMillisecond;
  net::BatchingTransport batching(reliable, timer, config);
  BufferPool pool;
  reliable.set_buffer_pool(&pool);
  batching.set_buffer_pool(&pool);

  struct Recycler final : net::PacketHandler {
    BufferPool* pool = nullptr;
    std::uint64_t delivered = 0;
    void on_packet(net::Packet packet) override {
      ++delivered;
      pool->release(std::move(packet.bytes));
    }
  };
  Recycler sink0, sink1;
  sink0.pool = sink1.pool = &pool;
  batching.attach(0, &sink0);
  batching.attach(1, &sink1);

  const auto round = [&] {
    for (int i = 0; i < 50; ++i) {
      Bytes payload = pool.acquire();
      payload.assign(64, static_cast<std::uint8_t>(i));
      batching.send(0, 1, std::move(payload));
    }
    simulator.run();  // drains threshold flushes AND the 1 ms flush timer
  };

  round();  // warm-up
  round();
  const std::uint64_t warm_misses = pool.misses();
  EXPECT_GT(warm_misses, 0u);
  for (int i = 0; i < 4; ++i) round();
  EXPECT_EQ(pool.misses(), warm_misses)
      << "steady-state coalescing path drew new buffers from the heap";
  EXPECT_EQ(sink1.delivered, 300u);
  EXPECT_TRUE(batching.quiescent());
  EXPECT_EQ(batching.malformed(), 0u);
  EXPECT_GT(batching.frames_sent(), 0u);
  // 50 messages per round at a 10-message threshold: real coalescing.
  EXPECT_LT(batching.frames_sent(), batching.messages_batched());
}

}  // namespace
}  // namespace causim::serial
