// serial::BufferPool unit tests plus the allocation bound the pooled
// encode path promises: once warm, encoding an Envelope into a pooled
// frame and recycling it performs zero heap allocations per message.
//
// The bound is measured with replacement global operator new/delete that
// count while a flag is up — no malloc hooks, no sampling, an exact count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "dsm/envelope.hpp"
#include "serial/buffer_pool.hpp"
#include "serial/writer.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace causim::serial {
namespace {

TEST(BufferPool, AcquireStartsEmptyAndCountsMisses) {
  BufferPool pool;
  const Bytes b = pool.acquire();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
}

TEST(BufferPool, ReleaseRecyclesCapacity) {
  BufferPool pool;
  Bytes b = pool.acquire();
  b.resize(256);
  const std::uint8_t* data = b.data();
  pool.release(std::move(b));
  EXPECT_EQ(pool.pooled(), 1u);

  const Bytes again = pool.acquire();
  EXPECT_TRUE(again.empty());  // contents are discarded...
  EXPECT_GE(again.capacity(), 256u);  // ...the capacity is what recycles
  EXPECT_EQ(again.data(), data);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(BufferPool, ZeroCapacityReleaseIsSkipped) {
  BufferPool pool;
  pool.release(Bytes{});
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, CopyProducesPooledDuplicate) {
  BufferPool pool;
  Bytes warm(64, 0xAB);
  pool.release(std::move(warm));

  const std::uint8_t src[] = {1, 2, 3, 4};
  const Bytes out = pool.copy(src, sizeof(src));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[3], 4u);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(BufferPool, PooledEncodePathIsAllocationFreeOnceWarm) {
  BufferPool pool;

  dsm::Envelope env;
  env.kind = MessageKind::kSM;
  env.sender = 3;
  env.var = 17;
  env.value.id = 42;
  env.value.payload_bytes = 64;
  env.write.writer = 3;
  env.write.clock = 9;
  env.meta.assign(96, 0x5C);  // a realistic piggyback block

  const auto encode_once = [&] {
    ByteWriter w(ClockWidth::k8Bytes, pool.acquire());
    env.encode_into(w);
    pool.release(w.take());
  };

  // Warm-up: the first round grows the pooled buffer to frame size.
  for (int i = 0; i < 8; ++i) encode_once();

  g_allocations.store(0);
  g_counting.store(true);
  for (int i = 0; i < 1000; ++i) encode_once();
  g_counting.store(false);

  EXPECT_EQ(g_allocations.load(), 0u)
      << "steady-state pooled encode must not touch the heap";
}

}  // namespace
}  // namespace causim::serial
