// Unit tests for the message envelope codec and its byte accounting, plus
// the try_decode fuzz round-trip: decoding adversarially corrupted bytes
// must fail cleanly, never crash.
#include <gtest/gtest.h>

#include "dsm/envelope.hpp"
#include "net/batching_transport.hpp"
#include "sim/rng.hpp"

namespace causim::dsm {
namespace {

TEST(Envelope, SmRoundTripWithSizes) {
  Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 7;
  e.var = 42;
  e.value = Value{0xABCDEF, 1000};
  e.write = WriteId{7, 33};
  e.meta = {1, 2, 3, 4, 5};

  Envelope::Sizes sizes;
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k4Bytes, &sizes);
  EXPECT_EQ(sizes.meta, 5u);
  EXPECT_EQ(sizes.payload, 1000u);
  EXPECT_EQ(sizes.total(), bytes.size());
  EXPECT_GT(sizes.header, 0u);

  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k4Bytes);
  EXPECT_EQ(d.kind, MessageKind::kSM);
  EXPECT_EQ(d.sender, 7);
  EXPECT_EQ(d.var, 42u);
  EXPECT_EQ(d.value, e.value);
  EXPECT_EQ(d.write, e.write);
  EXPECT_EQ(d.meta, e.meta);
}

TEST(Envelope, FmRoundTripCarriesNoPayload) {
  Envelope e;
  e.kind = MessageKind::kFM;
  e.sender = 2;
  e.var = 9;
  e.fetch_seq = 777;
  e.record = false;

  Envelope::Sizes sizes;
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k4Bytes, &sizes);
  EXPECT_EQ(sizes.payload, 0u);
  EXPECT_EQ(sizes.meta, 0u);

  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k4Bytes);
  EXPECT_EQ(d.kind, MessageKind::kFM);
  EXPECT_EQ(d.fetch_seq, 777u);
  EXPECT_FALSE(d.record);
}

TEST(Envelope, RmRoundTrip) {
  Envelope e;
  e.kind = MessageKind::kRM;
  e.sender = 3;
  e.var = 5;
  e.value = Value{11, 64};
  e.write = WriteId{1, 2};
  e.fetch_seq = 12;
  e.record = true;
  e.meta = {9, 9};

  Envelope::Sizes sizes;
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k8Bytes, &sizes);
  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k8Bytes);
  EXPECT_EQ(d.kind, MessageKind::kRM);
  EXPECT_EQ(d.fetch_seq, 12u);
  EXPECT_TRUE(d.record);
  EXPECT_EQ(d.write, e.write);
  EXPECT_EQ(d.value, e.value);
  EXPECT_EQ(d.meta, e.meta);
  EXPECT_EQ(sizes.payload, 64u);
}

TEST(Envelope, BottomValueRoundTrip) {
  Envelope e;
  e.kind = MessageKind::kRM;
  e.sender = 0;
  e.var = 1;
  // value/write left as ⊥ / null
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k4Bytes);
  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k4Bytes);
  EXPECT_TRUE(is_bottom(d.value));
  EXPECT_TRUE(is_null(d.write));
}

TEST(Envelope, PayloadBytesAreOnTheWire) {
  Envelope small, big;
  small.kind = big.kind = MessageKind::kSM;
  small.sender = big.sender = 0;
  small.var = big.var = 0;
  small.value = Value{1, 10};
  big.value = Value{2, 500};
  const auto sb = small.encode(serial::ClockWidth::k4Bytes);
  const auto bb = big.encode(serial::ClockWidth::k4Bytes);
  EXPECT_EQ(bb.size() - sb.size(), 490u);
}

TEST(Envelope, ClockWidthAffectsWriteIdField) {
  Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 0;
  e.var = 0;
  e.write = WriteId{0, 1};
  const auto narrow = e.encode(serial::ClockWidth::k4Bytes);
  const auto wide = e.encode(serial::ClockWidth::k8Bytes);
  EXPECT_EQ(wide.size() - narrow.size(), 4u);
}

// ---- try_decode: untrusted-input hardening ----

TEST(Envelope, TryDecodeAcceptsWellFormedBytes) {
  Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 4;
  e.var = 17;
  e.value = Value{99, 32};
  e.write = WriteId{4, 8};
  e.meta = {7, 7, 7};
  const auto bytes = e.encode(serial::ClockWidth::k4Bytes);
  const auto d = Envelope::try_decode(bytes, serial::ClockWidth::k4Bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->write, e.write);
  EXPECT_EQ(d->meta, e.meta);
}

TEST(Envelope, TryDecodeRejectsUnknownKindByte) {
  Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 0;
  e.var = 0;
  auto bytes = e.encode(serial::ClockWidth::k4Bytes);
  bytes[0] = 0x7F;  // not a MessageKind
  EXPECT_FALSE(Envelope::try_decode(bytes, serial::ClockWidth::k4Bytes).has_value());
}

TEST(Envelope, TryDecodeRejectsEmptyBytes) {
  EXPECT_FALSE(
      Envelope::try_decode(serial::Bytes{}, serial::ClockWidth::k4Bytes).has_value());
}

/// Seeds a few representative envelopes and fuzzes every truncation length
/// plus seeded random byte flips. try_decode must either reject or return
/// some envelope — it must never crash, hang, or read out of bounds (ASan
/// in CI turns any OOB into a failure).
TEST(EnvelopeFuzz, TruncationAndBitFlipsNeverCrash) {
  std::vector<Envelope> corpus;
  {
    Envelope sm;
    sm.kind = MessageKind::kSM;
    sm.sender = 3;
    sm.var = 12;
    sm.value = Value{5, 120};
    sm.write = WriteId{3, 44};
    sm.meta = serial::Bytes(37, 0xAA);
    corpus.push_back(sm);

    Envelope fm;
    fm.kind = MessageKind::kFM;
    fm.sender = 1;
    fm.var = 2;
    fm.fetch_seq = 999;
    corpus.push_back(fm);

    Envelope rm;
    rm.kind = MessageKind::kRM;
    rm.sender = 2;
    rm.var = 8;
    rm.value = Value{6, 0};
    rm.write = WriteId{2, 10};
    rm.fetch_seq = 1000;
    rm.meta = serial::Bytes(16, 0x55);
    corpus.push_back(rm);
  }

  sim::Pcg32 rng(2024);
  for (const serial::ClockWidth cw :
       {serial::ClockWidth::k4Bytes, serial::ClockWidth::k8Bytes}) {
    for (const Envelope& e : corpus) {
      const serial::Bytes bytes = e.encode(cw);
      // Every truncation, head and tail.
      for (std::size_t len = 0; len < bytes.size(); ++len) {
        const serial::Bytes head(bytes.begin(),
                                 bytes.begin() + static_cast<std::ptrdiff_t>(len));
        (void)Envelope::try_decode(head, cw);
        const serial::Bytes tail(bytes.begin() + static_cast<std::ptrdiff_t>(len),
                                 bytes.end());
        (void)Envelope::try_decode(tail, cw);
      }
      // Random byte flips, 1–4 at a time.
      for (int trial = 0; trial < 500; ++trial) {
        serial::Bytes mutated = bytes;
        const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
        for (int f = 0; f < flips; ++f) {
          const auto pos = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
          mutated[pos] = static_cast<std::uint8_t>(rng.next_u32());
        }
        const auto d = Envelope::try_decode(mutated, cw);
        if (d.has_value()) {
          // Whatever survived must re-encode without tripping any
          // invariant (exercises the writer against fuzzed field values).
          (void)d->encode(cw);
        }
      }
    }
  }
}

/// Round-trip stability: decode(encode(x)) == x for seeded random
/// envelopes across both clock widths.
TEST(EnvelopeFuzz, RandomEnvelopeRoundTrip) {
  sim::Pcg32 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Envelope e;
    const int kind = static_cast<int>(rng.uniform_int(0, 2));
    e.kind = static_cast<MessageKind>(kind);
    e.sender = static_cast<SiteId>(rng.uniform_int(0, 1000));
    e.var = static_cast<VarId>(rng.uniform_int(0, 1 << 20));
    e.fetch_seq = rng.next_u64();
    e.record = rng.bernoulli(0.5);
    if (e.kind != MessageKind::kFM) {
      e.value = Value{rng.next_u64(), static_cast<std::uint32_t>(rng.uniform_int(0, 4096))};
      e.write = WriteId{static_cast<SiteId>(rng.uniform_int(0, 1000)),
                        static_cast<WriteClock>(rng.uniform_int(0, 1 << 30))};
      e.meta.assign(static_cast<std::size_t>(rng.uniform_int(0, 64)), 0);
      for (auto& b : e.meta) b = static_cast<std::uint8_t>(rng.next_u32());
    }
    const serial::ClockWidth cw =
        rng.bernoulli(0.5) ? serial::ClockWidth::k4Bytes : serial::ClockWidth::k8Bytes;
    const auto d = Envelope::try_decode(e.encode(cw), cw);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->kind, e.kind);
    EXPECT_EQ(d->sender, e.sender);
    EXPECT_EQ(d->var, e.var);
    EXPECT_EQ(d->meta, e.meta);
    if (e.kind != MessageKind::kSM) EXPECT_EQ(d->fetch_seq, e.fetch_seq);
    if (e.kind != MessageKind::kFM) {
      EXPECT_EQ(d->value, e.value);
      EXPECT_EQ(d->write, e.write);
    }
  }
}

// ---- batch framing (net::BatchCoalescer + Envelope batch helpers) ----

std::vector<Envelope> mixed_batch() {
  std::vector<Envelope> batch;
  Envelope sm;
  sm.kind = MessageKind::kSM;
  sm.sender = 3;
  sm.var = 12;
  sm.value = Value{5, 120};
  sm.write = WriteId{3, 44};
  sm.meta = serial::Bytes(21, 0xAA);
  batch.push_back(sm);
  Envelope fm;
  fm.kind = MessageKind::kFM;
  fm.sender = 1;
  fm.var = 2;
  fm.fetch_seq = 999;
  fm.record = false;
  batch.push_back(fm);
  Envelope rm;
  rm.kind = MessageKind::kRM;
  rm.sender = 2;
  rm.var = 8;
  rm.value = Value{6, 33};
  rm.write = WriteId{2, 10};
  rm.fetch_seq = 1000;
  rm.meta = serial::Bytes(9, 0x55);
  batch.push_back(rm);
  return batch;
}

/// A coalescer whose thresholds no append can trip (builds frames
/// flush-on-demand, like Envelope::encode_batch does internally).
net::BatchConfig untrippable() {
  net::BatchConfig config;
  config.enabled = true;
  config.max_messages = 1u << 30;
  config.max_bytes = static_cast<std::size_t>(1) << 40;
  return config;
}

TEST(EnvelopeBatch, MixedKindsRoundTrip) {
  const auto batch = mixed_batch();
  for (const serial::ClockWidth cw :
       {serial::ClockWidth::k4Bytes, serial::ClockWidth::k8Bytes}) {
    const serial::Bytes frame = Envelope::encode_batch(batch, cw);
    const auto decoded = Envelope::try_decode_batch(frame, cw);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ((*decoded)[i].kind, batch[i].kind) << i;
      EXPECT_EQ((*decoded)[i].sender, batch[i].sender) << i;
      EXPECT_EQ((*decoded)[i].var, batch[i].var) << i;
      EXPECT_EQ((*decoded)[i].meta, batch[i].meta) << i;
      if (batch[i].kind != MessageKind::kFM) {
        EXPECT_EQ((*decoded)[i].value, batch[i].value) << i;
        EXPECT_EQ((*decoded)[i].write, batch[i].write) << i;
      }
    }
  }
}

TEST(EnvelopeBatch, HelperAndCoalescerProduceIdenticalFrames) {
  // The transport edge builds frames through BatchCoalescer::append/flush;
  // Envelope::encode_batch must emit byte-identical framing, or the
  // property tests here would validate a format the wire never carries.
  const auto batch = mixed_batch();
  const auto cw = serial::ClockWidth::k4Bytes;
  net::BatchCoalescer coalescer(untrippable());
  for (const Envelope& e : batch) {
    EXPECT_FALSE(coalescer.append(e.encode(cw)).has_value());
  }
  const auto frame = coalescer.flush(net::BatchCoalescer::Flush::kForced);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->messages, batch.size());
  EXPECT_EQ(frame->bytes, Envelope::encode_batch(batch, cw));

  // Pin the wire layout itself: tag byte, then a little-endian u32 count,
  // then per-message little-endian u32 length prefixes.
  const serial::Bytes& bytes = frame->bytes;
  ASSERT_GE(bytes.size(), net::BatchCoalescer::kFrameHeaderBytes);
  EXPECT_EQ(bytes[0], net::BatchCoalescer::kBatchFrame);
  const auto count = static_cast<std::uint32_t>(bytes[1]) |
                     static_cast<std::uint32_t>(bytes[2]) << 8 |
                     static_cast<std::uint32_t>(bytes[3]) << 16 |
                     static_cast<std::uint32_t>(bytes[4]) << 24;
  EXPECT_EQ(count, batch.size());
  const auto first_len = static_cast<std::uint32_t>(bytes[5]) |
                         static_cast<std::uint32_t>(bytes[6]) << 8 |
                         static_cast<std::uint32_t>(bytes[7]) << 16 |
                         static_cast<std::uint32_t>(bytes[8]) << 24;
  EXPECT_EQ(first_len, batch[0].encode(cw).size());
}

TEST(EnvelopeBatch, RejectsMalformedFramingWithoutPartialDelivery) {
  const auto cw = serial::ClockWidth::k4Bytes;
  const serial::Bytes good = Envelope::encode_batch(mixed_batch(), cw);

  // Wrong tag.
  serial::Bytes bad_tag = good;
  bad_tag[0] = 0xD1;  // a ReliableChannel DATA frame, not a batch
  EXPECT_FALSE(Envelope::try_decode_batch(bad_tag, cw).has_value());

  // Count patched above the actual message count.
  serial::Bytes bad_count = good;
  bad_count[1] = static_cast<std::uint8_t>(bad_count[1] + 1);
  EXPECT_FALSE(Envelope::try_decode_batch(bad_count, cw).has_value());

  // Trailing garbage after the last message.
  serial::Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(Envelope::try_decode_batch(trailing, cw).has_value());

  // The two-pass decoder must validate the WHOLE frame before delivering
  // anything: a frame whose last message is truncated yields no callback
  // at all, never the valid prefix.
  serial::Bytes truncated = good;
  truncated.pop_back();
  std::size_t delivered = 0;
  EXPECT_FALSE(net::BatchCoalescer::try_decode(
      truncated, [&](const std::uint8_t*, std::size_t) { ++delivered; }));
  EXPECT_EQ(delivered, 0u);
}

TEST(EnvelopeBatchFuzz, TruncationAndBitFlipsNeverCrash) {
  const auto cw = serial::ClockWidth::k4Bytes;
  const serial::Bytes frame = Envelope::encode_batch(mixed_batch(), cw);
  // Every truncation length: reject or survive, never crash (ASan guards
  // the out-of-bounds reads a sloppy length-prefix walk would make).
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const serial::Bytes head(frame.begin(),
                             frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(Envelope::try_decode_batch(head, cw).has_value())
        << "truncated frame of " << len << " bytes decoded";
  }
  // Seeded bit flips: any surviving decode must re-encode cleanly.
  sim::Pcg32 rng(4242);
  for (int trial = 0; trial < 2000; ++trial) {
    serial::Bytes mutated = frame;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<std::uint8_t>(rng.next_u32());
    }
    const auto decoded = Envelope::try_decode_batch(mutated, cw);
    if (decoded.has_value()) {
      for (const Envelope& e : *decoded) (void)e.encode(cw);
    }
  }
}

TEST(BatchCoalescer, CountThresholdTripsExactlyOnTheNthAppend) {
  net::BatchConfig config = untrippable();
  config.max_messages = 3;
  net::BatchCoalescer coalescer(config);
  const auto payload = [] {
    Envelope fm;
    fm.kind = MessageKind::kFM;
    fm.sender = 1;
    fm.var = 2;
    return fm.encode(serial::ClockWidth::k4Bytes);
  };
  EXPECT_FALSE(coalescer.append(payload()).has_value());
  EXPECT_FALSE(coalescer.append(payload()).has_value());
  const auto frame = coalescer.append(payload());
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->reason, net::BatchCoalescer::Flush::kCount);
  EXPECT_EQ(frame->messages, 3u);
  EXPECT_EQ(coalescer.buffered_messages(), 0u);
  EXPECT_EQ(coalescer.flushes(net::BatchCoalescer::Flush::kCount), 1u);
  EXPECT_EQ(coalescer.flushes(net::BatchCoalescer::Flush::kSize), 0u);
  EXPECT_EQ(coalescer.flushes(net::BatchCoalescer::Flush::kTimer), 0u);
}

TEST(BatchCoalescer, SizeThresholdTripsExactlyWhenCrossed) {
  Envelope fm;
  fm.kind = MessageKind::kFM;
  fm.sender = 1;
  fm.var = 2;
  const serial::Bytes one = fm.encode(serial::ClockWidth::k4Bytes);
  const std::size_t framed =
      net::BatchCoalescer::kPerMessageBytes + one.size();

  net::BatchConfig config = untrippable();
  // Boundary: exactly two framed messages fit the header + 2·framed
  // budget, so the second append reaches (not exceeds) the limit and
  // must flush; one message stays strictly below it.
  config.max_bytes = net::BatchCoalescer::kFrameHeaderBytes + 2 * framed;
  net::BatchCoalescer coalescer(config);
  EXPECT_FALSE(coalescer.append(serial::Bytes(one)).has_value());
  const auto frame = coalescer.append(serial::Bytes(one));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->reason, net::BatchCoalescer::Flush::kSize);
  EXPECT_EQ(frame->messages, 2u);
  EXPECT_EQ(frame->bytes.size(), config.max_bytes);
  EXPECT_EQ(coalescer.flushes(net::BatchCoalescer::Flush::kSize), 1u);

  // An oversized single message still ships — as a batch of one.
  net::BatchConfig tiny = untrippable();
  tiny.max_bytes = net::BatchCoalescer::kFrameHeaderBytes +
                   net::BatchCoalescer::kPerMessageBytes;
  net::BatchCoalescer one_shot(tiny);
  const auto single = one_shot.append(serial::Bytes(one));
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->reason, net::BatchCoalescer::Flush::kSize);
  EXPECT_EQ(single->messages, 1u);
}

TEST(BatchCoalescer, TimerFlushDrainsOnceThenGoesIdle) {
  net::BatchCoalescer coalescer(untrippable());
  // Nothing buffered: a timer firing on an idle channel is a no-op.
  EXPECT_FALSE(coalescer.flush(net::BatchCoalescer::Flush::kTimer).has_value());

  Envelope fm;
  fm.kind = MessageKind::kFM;
  fm.sender = 1;
  fm.var = 2;
  EXPECT_FALSE(coalescer.append(fm.encode(serial::ClockWidth::k4Bytes)).has_value());
  const auto frame = coalescer.flush(net::BatchCoalescer::Flush::kTimer);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->reason, net::BatchCoalescer::Flush::kTimer);
  EXPECT_EQ(frame->messages, 1u);
  // Exactly once: the channel is empty again.
  EXPECT_FALSE(coalescer.flush(net::BatchCoalescer::Flush::kTimer).has_value());
  EXPECT_EQ(coalescer.flushes(net::BatchCoalescer::Flush::kTimer), 1u);
  EXPECT_EQ(coalescer.frames(), 1u);
  EXPECT_EQ(coalescer.messages(), 1u);
}

}  // namespace
}  // namespace causim::dsm
