// Unit tests for the message envelope codec and its byte accounting.
#include <gtest/gtest.h>

#include "dsm/envelope.hpp"

namespace causim::dsm {
namespace {

TEST(Envelope, SmRoundTripWithSizes) {
  Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 7;
  e.var = 42;
  e.value = Value{0xABCDEF, 1000};
  e.write = WriteId{7, 33};
  e.meta = {1, 2, 3, 4, 5};

  Envelope::Sizes sizes;
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k4Bytes, &sizes);
  EXPECT_EQ(sizes.meta, 5u);
  EXPECT_EQ(sizes.payload, 1000u);
  EXPECT_EQ(sizes.total(), bytes.size());
  EXPECT_GT(sizes.header, 0u);

  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k4Bytes);
  EXPECT_EQ(d.kind, MessageKind::kSM);
  EXPECT_EQ(d.sender, 7);
  EXPECT_EQ(d.var, 42u);
  EXPECT_EQ(d.value, e.value);
  EXPECT_EQ(d.write, e.write);
  EXPECT_EQ(d.meta, e.meta);
}

TEST(Envelope, FmRoundTripCarriesNoPayload) {
  Envelope e;
  e.kind = MessageKind::kFM;
  e.sender = 2;
  e.var = 9;
  e.fetch_seq = 777;
  e.record = false;

  Envelope::Sizes sizes;
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k4Bytes, &sizes);
  EXPECT_EQ(sizes.payload, 0u);
  EXPECT_EQ(sizes.meta, 0u);

  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k4Bytes);
  EXPECT_EQ(d.kind, MessageKind::kFM);
  EXPECT_EQ(d.fetch_seq, 777u);
  EXPECT_FALSE(d.record);
}

TEST(Envelope, RmRoundTrip) {
  Envelope e;
  e.kind = MessageKind::kRM;
  e.sender = 3;
  e.var = 5;
  e.value = Value{11, 64};
  e.write = WriteId{1, 2};
  e.fetch_seq = 12;
  e.record = true;
  e.meta = {9, 9};

  Envelope::Sizes sizes;
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k8Bytes, &sizes);
  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k8Bytes);
  EXPECT_EQ(d.kind, MessageKind::kRM);
  EXPECT_EQ(d.fetch_seq, 12u);
  EXPECT_TRUE(d.record);
  EXPECT_EQ(d.write, e.write);
  EXPECT_EQ(d.value, e.value);
  EXPECT_EQ(d.meta, e.meta);
  EXPECT_EQ(sizes.payload, 64u);
}

TEST(Envelope, BottomValueRoundTrip) {
  Envelope e;
  e.kind = MessageKind::kRM;
  e.sender = 0;
  e.var = 1;
  // value/write left as ⊥ / null
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k4Bytes);
  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k4Bytes);
  EXPECT_TRUE(is_bottom(d.value));
  EXPECT_TRUE(is_null(d.write));
}

TEST(Envelope, PayloadBytesAreOnTheWire) {
  Envelope small, big;
  small.kind = big.kind = MessageKind::kSM;
  small.sender = big.sender = 0;
  small.var = big.var = 0;
  small.value = Value{1, 10};
  big.value = Value{2, 500};
  const auto sb = small.encode(serial::ClockWidth::k4Bytes);
  const auto bb = big.encode(serial::ClockWidth::k4Bytes);
  EXPECT_EQ(bb.size() - sb.size(), 490u);
}

TEST(Envelope, ClockWidthAffectsWriteIdField) {
  Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 0;
  e.var = 0;
  e.write = WriteId{0, 1};
  const auto narrow = e.encode(serial::ClockWidth::k4Bytes);
  const auto wide = e.encode(serial::ClockWidth::k8Bytes);
  EXPECT_EQ(wide.size() - narrow.size(), 4u);
}

}  // namespace
}  // namespace causim::dsm
