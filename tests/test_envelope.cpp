// Unit tests for the message envelope codec and its byte accounting, plus
// the try_decode fuzz round-trip: decoding adversarially corrupted bytes
// must fail cleanly, never crash.
#include <gtest/gtest.h>

#include "dsm/envelope.hpp"
#include "sim/rng.hpp"

namespace causim::dsm {
namespace {

TEST(Envelope, SmRoundTripWithSizes) {
  Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 7;
  e.var = 42;
  e.value = Value{0xABCDEF, 1000};
  e.write = WriteId{7, 33};
  e.meta = {1, 2, 3, 4, 5};

  Envelope::Sizes sizes;
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k4Bytes, &sizes);
  EXPECT_EQ(sizes.meta, 5u);
  EXPECT_EQ(sizes.payload, 1000u);
  EXPECT_EQ(sizes.total(), bytes.size());
  EXPECT_GT(sizes.header, 0u);

  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k4Bytes);
  EXPECT_EQ(d.kind, MessageKind::kSM);
  EXPECT_EQ(d.sender, 7);
  EXPECT_EQ(d.var, 42u);
  EXPECT_EQ(d.value, e.value);
  EXPECT_EQ(d.write, e.write);
  EXPECT_EQ(d.meta, e.meta);
}

TEST(Envelope, FmRoundTripCarriesNoPayload) {
  Envelope e;
  e.kind = MessageKind::kFM;
  e.sender = 2;
  e.var = 9;
  e.fetch_seq = 777;
  e.record = false;

  Envelope::Sizes sizes;
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k4Bytes, &sizes);
  EXPECT_EQ(sizes.payload, 0u);
  EXPECT_EQ(sizes.meta, 0u);

  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k4Bytes);
  EXPECT_EQ(d.kind, MessageKind::kFM);
  EXPECT_EQ(d.fetch_seq, 777u);
  EXPECT_FALSE(d.record);
}

TEST(Envelope, RmRoundTrip) {
  Envelope e;
  e.kind = MessageKind::kRM;
  e.sender = 3;
  e.var = 5;
  e.value = Value{11, 64};
  e.write = WriteId{1, 2};
  e.fetch_seq = 12;
  e.record = true;
  e.meta = {9, 9};

  Envelope::Sizes sizes;
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k8Bytes, &sizes);
  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k8Bytes);
  EXPECT_EQ(d.kind, MessageKind::kRM);
  EXPECT_EQ(d.fetch_seq, 12u);
  EXPECT_TRUE(d.record);
  EXPECT_EQ(d.write, e.write);
  EXPECT_EQ(d.value, e.value);
  EXPECT_EQ(d.meta, e.meta);
  EXPECT_EQ(sizes.payload, 64u);
}

TEST(Envelope, BottomValueRoundTrip) {
  Envelope e;
  e.kind = MessageKind::kRM;
  e.sender = 0;
  e.var = 1;
  // value/write left as ⊥ / null
  const serial::Bytes bytes = e.encode(serial::ClockWidth::k4Bytes);
  const Envelope d = Envelope::decode(bytes, serial::ClockWidth::k4Bytes);
  EXPECT_TRUE(is_bottom(d.value));
  EXPECT_TRUE(is_null(d.write));
}

TEST(Envelope, PayloadBytesAreOnTheWire) {
  Envelope small, big;
  small.kind = big.kind = MessageKind::kSM;
  small.sender = big.sender = 0;
  small.var = big.var = 0;
  small.value = Value{1, 10};
  big.value = Value{2, 500};
  const auto sb = small.encode(serial::ClockWidth::k4Bytes);
  const auto bb = big.encode(serial::ClockWidth::k4Bytes);
  EXPECT_EQ(bb.size() - sb.size(), 490u);
}

TEST(Envelope, ClockWidthAffectsWriteIdField) {
  Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 0;
  e.var = 0;
  e.write = WriteId{0, 1};
  const auto narrow = e.encode(serial::ClockWidth::k4Bytes);
  const auto wide = e.encode(serial::ClockWidth::k8Bytes);
  EXPECT_EQ(wide.size() - narrow.size(), 4u);
}

// ---- try_decode: untrusted-input hardening ----

TEST(Envelope, TryDecodeAcceptsWellFormedBytes) {
  Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 4;
  e.var = 17;
  e.value = Value{99, 32};
  e.write = WriteId{4, 8};
  e.meta = {7, 7, 7};
  const auto bytes = e.encode(serial::ClockWidth::k4Bytes);
  const auto d = Envelope::try_decode(bytes, serial::ClockWidth::k4Bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->write, e.write);
  EXPECT_EQ(d->meta, e.meta);
}

TEST(Envelope, TryDecodeRejectsUnknownKindByte) {
  Envelope e;
  e.kind = MessageKind::kSM;
  e.sender = 0;
  e.var = 0;
  auto bytes = e.encode(serial::ClockWidth::k4Bytes);
  bytes[0] = 0x7F;  // not a MessageKind
  EXPECT_FALSE(Envelope::try_decode(bytes, serial::ClockWidth::k4Bytes).has_value());
}

TEST(Envelope, TryDecodeRejectsEmptyBytes) {
  EXPECT_FALSE(
      Envelope::try_decode(serial::Bytes{}, serial::ClockWidth::k4Bytes).has_value());
}

/// Seeds a few representative envelopes and fuzzes every truncation length
/// plus seeded random byte flips. try_decode must either reject or return
/// some envelope — it must never crash, hang, or read out of bounds (ASan
/// in CI turns any OOB into a failure).
TEST(EnvelopeFuzz, TruncationAndBitFlipsNeverCrash) {
  std::vector<Envelope> corpus;
  {
    Envelope sm;
    sm.kind = MessageKind::kSM;
    sm.sender = 3;
    sm.var = 12;
    sm.value = Value{5, 120};
    sm.write = WriteId{3, 44};
    sm.meta = serial::Bytes(37, 0xAA);
    corpus.push_back(sm);

    Envelope fm;
    fm.kind = MessageKind::kFM;
    fm.sender = 1;
    fm.var = 2;
    fm.fetch_seq = 999;
    corpus.push_back(fm);

    Envelope rm;
    rm.kind = MessageKind::kRM;
    rm.sender = 2;
    rm.var = 8;
    rm.value = Value{6, 0};
    rm.write = WriteId{2, 10};
    rm.fetch_seq = 1000;
    rm.meta = serial::Bytes(16, 0x55);
    corpus.push_back(rm);
  }

  sim::Pcg32 rng(2024);
  for (const serial::ClockWidth cw :
       {serial::ClockWidth::k4Bytes, serial::ClockWidth::k8Bytes}) {
    for (const Envelope& e : corpus) {
      const serial::Bytes bytes = e.encode(cw);
      // Every truncation, head and tail.
      for (std::size_t len = 0; len < bytes.size(); ++len) {
        const serial::Bytes head(bytes.begin(),
                                 bytes.begin() + static_cast<std::ptrdiff_t>(len));
        (void)Envelope::try_decode(head, cw);
        const serial::Bytes tail(bytes.begin() + static_cast<std::ptrdiff_t>(len),
                                 bytes.end());
        (void)Envelope::try_decode(tail, cw);
      }
      // Random byte flips, 1–4 at a time.
      for (int trial = 0; trial < 500; ++trial) {
        serial::Bytes mutated = bytes;
        const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
        for (int f = 0; f < flips; ++f) {
          const auto pos = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
          mutated[pos] = static_cast<std::uint8_t>(rng.next_u32());
        }
        const auto d = Envelope::try_decode(mutated, cw);
        if (d.has_value()) {
          // Whatever survived must re-encode without tripping any
          // invariant (exercises the writer against fuzzed field values).
          (void)d->encode(cw);
        }
      }
    }
  }
}

/// Round-trip stability: decode(encode(x)) == x for seeded random
/// envelopes across both clock widths.
TEST(EnvelopeFuzz, RandomEnvelopeRoundTrip) {
  sim::Pcg32 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Envelope e;
    const int kind = static_cast<int>(rng.uniform_int(0, 2));
    e.kind = static_cast<MessageKind>(kind);
    e.sender = static_cast<SiteId>(rng.uniform_int(0, 1000));
    e.var = static_cast<VarId>(rng.uniform_int(0, 1 << 20));
    e.fetch_seq = rng.next_u64();
    e.record = rng.bernoulli(0.5);
    if (e.kind != MessageKind::kFM) {
      e.value = Value{rng.next_u64(), static_cast<std::uint32_t>(rng.uniform_int(0, 4096))};
      e.write = WriteId{static_cast<SiteId>(rng.uniform_int(0, 1000)),
                        static_cast<WriteClock>(rng.uniform_int(0, 1 << 30))};
      e.meta.assign(static_cast<std::size_t>(rng.uniform_int(0, 64)), 0);
      for (auto& b : e.meta) b = static_cast<std::uint8_t>(rng.next_u32());
    }
    const serial::ClockWidth cw =
        rng.bernoulli(0.5) ? serial::ClockWidth::k4Bytes : serial::ClockWidth::k8Bytes;
    const auto d = Envelope::try_decode(e.encode(cw), cw);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->kind, e.kind);
    EXPECT_EQ(d->sender, e.sender);
    EXPECT_EQ(d->var, e.var);
    EXPECT_EQ(d->meta, e.meta);
    if (e.kind != MessageKind::kSM) EXPECT_EQ(d->fetch_seq, e.fetch_seq);
    if (e.kind != MessageKind::kFM) {
      EXPECT_EQ(d->value, e.value);
      EXPECT_EQ(d->write, e.write);
    }
  }
}

}  // namespace
}  // namespace causim::dsm
