// Concurrency harness for engine::PooledExecutor — the sharded worker
// pool that multiplexes N sites over W workers.
//
// Three families of pressure:
//   * randomized stress: sites >> workers, seeded schedules, the fault
//     stack injecting drops/dups/delay/pauses underneath, coalescing on
//     for half the seeds — every seed must drain, quiesce, and pass the
//     causal checker (seed count scales with CAUSIM_POOL_SEEDS, default
//     50; CI's PR lane sets a short value, the TSan lane the full one),
//   * shutdown races: abort() fired from another thread at arbitrary
//     points of a live play(), including after natural completion and
//     repeatedly — the invoker gates, the flush timers and the receipt
//     threads must all tear down without deadlock or leaks (this is the
//     test TSan chews on),
//   * steady-state resource sanity: the coalescing path keeps recycling
//     frames through the shared serial::BufferPool.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "bench_support/experiment.hpp"
#include "dsm/thread_cluster.hpp"
#include "engine/pooled_executor.hpp"
#include "engine/schedule_driver.hpp"
#include "net/thread_transport.hpp"
#include "workload/schedule.hpp"

namespace causim {
namespace {

int seed_count() {
  if (const char* env = std::getenv("CAUSIM_POOL_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 50;
}

constexpr std::array<causal::ProtocolKind, 4> kProtocols = {
    causal::ProtocolKind::kFullTrack, causal::ProtocolKind::kOptTrack,
    causal::ProtocolKind::kOptTrackCrp, causal::ProtocolKind::kOptP};

workload::Schedule schedule_for(SiteId n, std::uint64_t seed,
                                std::size_t ops) {
  workload::WorkloadParams wl;
  wl.variables = 16;
  wl.write_rate = 0.5;
  wl.ops_per_site = ops;
  wl.seed = seed;
  return workload::generate_schedule(n, wl);
}

/// One stress cell: the protocol rotates with the seed, 12 sites share
/// 2–3 workers, odd seeds coalesce, and two thirds of the seeds run over
/// a faulty wire with a short real-time RTO so retransmission actually
/// interleaves with pool scheduling.
dsm::ClusterConfig stress_config(std::uint64_t seed) {
  const causal::ProtocolKind kind = kProtocols[seed % kProtocols.size()];
  dsm::ClusterConfig config;
  config.sites = 12;
  config.variables = 16;
  config.replication = causal::requires_full_replication(kind) ? 0 : 4;
  config.protocol = kind;
  config.seed = seed;
  config.record_history = true;
  config.executor = engine::ExecutorKind::kPooled;
  config.workers = 2 + static_cast<unsigned>(seed % 2);
  if (seed % 2 == 1) {
    config.batch.enabled = true;
    config.batch.max_messages = 8;
    config.batch.max_delay = 2 * kMillisecond;  // real time on this path
  }
  if (seed % 3 != 0) {
    config.fault_plan.default_faults.drop_rate = 0.05;
    config.fault_plan.default_faults.dup_rate = 0.05;
    config.fault_plan.default_faults.extra_delay_max = 500;  // µs, reorders
    // A short partition of a rotating site right at startup.
    config.fault_plan.pauses.push_back(faults::PauseWindow{
        static_cast<SiteId>(seed % config.sites), 0, 2 * kMillisecond});
    config.reliable_config.rto_initial = 20 * kMillisecond;
    config.reliable_config.rto_min = 10 * kMillisecond;
    config.reliable_config.adaptive_rto = seed % 2 == 1;
    if (seed % 4 == 1) {
      config.reliable_config.arq = net::ArqMode::kSelectiveRepeat;
    }
  }
  return config;
}

TEST(PooledExecutorStress, SeededScheduleMatrixStaysCausal) {
  const int seeds = seed_count();
  for (int s = 1; s <= seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    const dsm::ClusterConfig config = stress_config(seed);
    dsm::ThreadCluster::Options options;
    options.max_wire_delay_us = s % 3 == 0 ? 300 : 0;
    dsm::ThreadCluster cluster(config, options);
    cluster.execute(schedule_for(config.sites, seed, 16));

    const auto result = cluster.check();
    ASSERT_TRUE(result.ok())
        << to_string(config.protocol) << " seed " << s << ": "
        << (result.violations.empty() ? "" : result.violations.front());
    if (config.batch.enabled) {
      ASSERT_NE(cluster.stack().batching(), nullptr);
      EXPECT_TRUE(cluster.stack().batching()->quiescent()) << "seed " << s;
      EXPECT_EQ(cluster.stack().batching()->malformed(), 0u) << "seed " << s;
    }
  }
}

// ---------------------------------------------------------------------------

/// Hand-assembled stack (the pieces dsm::ThreadCluster wires) so the test
/// can call play() and abort() itself instead of going through
/// ScheduleDriver::execute's play-drain-finish-verify sequence.
struct RacingStack {
  explicit RacingStack(const dsm::ClusterConfig& config, unsigned workers) {
    net::ThreadTransport::Options topt;
    topt.max_delay_us = 200;
    topt.seed = config.seed;
    transport = std::make_unique<net::ThreadTransport>(config.sites, topt);
    engine::NodeStack::Wiring wiring;
    wiring.wire = transport.get();
    wiring.make_timer = [] { return std::make_unique<net::ThreadTimerDriver>(); };
    stack = std::make_unique<engine::NodeStack>(config, std::move(wiring));
    engine::PooledExecutor::Options popt;
    popt.workers = workers;
    executor = std::make_unique<engine::PooledExecutor>(*stack, *transport, popt);
    driver = std::make_unique<engine::ScheduleDriver>(*stack, *executor);
  }

  std::unique_ptr<net::ThreadTransport> transport;
  std::unique_ptr<engine::NodeStack> stack;
  std::unique_ptr<engine::PooledExecutor> executor;
  std::unique_ptr<engine::ScheduleDriver> driver;
};

dsm::ClusterConfig race_config(std::uint64_t seed, bool batch) {
  dsm::ClusterConfig config;
  config.sites = 8;
  config.variables = 16;
  config.replication = 3;
  config.protocol = causal::ProtocolKind::kOptTrack;
  config.seed = seed;
  config.record_history = false;
  config.executor = engine::ExecutorKind::kPooled;
  config.workers = 2;
  if (batch) {
    config.batch.enabled = true;
    config.batch.max_messages = 4;
    config.batch.max_delay = kMillisecond;
  }
  return config;
}

TEST(PooledExecutorShutdown, AbortRacesLivePlay) {
  // Sweep the abort point from "before any op ran" to "after the run
  // completed on its own": every landing spot must tear down cleanly, and
  // a second abort() must be a no-op.
  for (int i = 0; i < 14; ++i) {
    RacingStack rig(race_config(static_cast<std::uint64_t>(i), i % 2 == 1),
                    /*workers=*/2);
    const auto schedule =
        schedule_for(8, static_cast<std::uint64_t>(i) + 100, 40);
    std::thread runner(
        [&] { rig.executor->play(*rig.driver, schedule); });
    std::this_thread::sleep_for(std::chrono::microseconds(350 * i));
    rig.executor->abort();
    runner.join();
    rig.executor->abort();  // idempotent after teardown
  }
}

TEST(PooledExecutorShutdown, AbortWithoutPlayIsANoOp) {
  RacingStack rig(race_config(99, true), /*workers=*/3);
  rig.executor->abort();
  rig.executor->abort();
}

TEST(PooledExecutorShutdown, QuiesceAfterAbortedRunAllowsFreshRun) {
  // An aborted run leaves the stack referenced by nothing (all threads
  // joined) — destroying it and running a fresh full cluster afterwards
  // must behave exactly like a first run.
  {
    RacingStack rig(race_config(7, true), /*workers=*/2);
    const auto schedule = schedule_for(8, 7, 40);
    std::thread runner([&] { rig.executor->play(*rig.driver, schedule); });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    rig.executor->abort();
    runner.join();
  }
  dsm::ThreadCluster cluster(race_config(7, true));
  cluster.execute(schedule_for(8, 7, 40));
  ASSERT_NE(cluster.stack().batching(), nullptr);
  EXPECT_TRUE(cluster.stack().batching()->quiescent());
}

// ---------------------------------------------------------------------------

TEST(PooledExecutor, ResolvesHardwareWorkerCount) {
  RacingStack rig(race_config(1, false), /*workers=*/0);
  EXPECT_GE(rig.executor->workers(), 1u);
}

TEST(PooledExecutor, CoalescingPathRecyclesPooledFrames) {
  dsm::ClusterConfig config = race_config(11, true);
  dsm::ThreadCluster cluster(config);
  cluster.execute(schedule_for(8, 11, 60));
  const auto& pool = cluster.stack().buffer_pool();
  EXPECT_GT(pool.reuses(), 0u);
  EXPECT_GT(pool.reuses(), pool.misses());
  ASSERT_NE(cluster.stack().batching(), nullptr);
  EXPECT_GT(cluster.stack().batching()->frames_sent(), 0u);
  // Coalescing means strictly fewer frames than messages.
  EXPECT_LT(cluster.stack().batching()->frames_sent(),
            cluster.stack().batching()->messages_batched());
  EXPECT_EQ(cluster.stack().batching()->malformed(), 0u);
}

}  // namespace
}  // namespace causim
