// Tests for the KS causal multicast library (the message-passing substrate
// Opt-Track is derived from).
#include <gtest/gtest.h>

#include "ksmulticast/multicast_group.hpp"
#include "sim/rng.hpp"

namespace causim::ksmulticast {
namespace {

DestSet dests(SiteId n, std::initializer_list<SiteId> sites) { return DestSet(n, sites); }

TEST(KsProcess, SendPiggybacksAndPrunes) {
  KsProcess p(0, 4);
  serial::ByteWriter m1(serial::ClockWidth::k4Bytes);
  const WriteId id1 = p.send(dests(4, {1, 2}), m1);
  EXPECT_EQ(id1, (WriteId{0, 1}));
  {
    serial::ByteReader r(m1.bytes());
    EXPECT_TRUE(causal::KsLog::deserialize(r).empty());  // first send: empty log
  }
  ASSERT_NE(p.log().find(id1), nullptr);
  EXPECT_EQ(*p.log().find(id1), dests(4, {1, 2}));

  // Second send to an overlapping set prunes the first entry (condition 2)
  // and piggybacks the pre-prune log.
  serial::ByteWriter m2(serial::ClockWidth::k4Bytes);
  const WriteId id2 = p.send(dests(4, {2, 3}), m2);
  serial::ByteReader r(m2.bytes());
  const causal::KsLog piggyback = causal::KsLog::deserialize(r);
  ASSERT_NE(piggyback.find(id1), nullptr);
  EXPECT_EQ(*piggyback.find(id1), dests(4, {1, 2}));
  EXPECT_EQ(*p.log().find(id1), dests(4, {1}));
  EXPECT_EQ(*p.log().find(id2), dests(4, {2, 3}));
}

TEST(KsProcess, DeliveryConditionWaitsForCausalPredecessor) {
  KsProcess a(0, 3), b(1, 3), c(2, 3);
  // a sends m1 to {1,2}; b delivers m1, then sends m2 to {2}.
  serial::ByteWriter meta1(serial::ClockWidth::k4Bytes);
  const WriteId m1 = a.send(dests(3, {1, 2}), meta1);
  serial::ByteReader r1b(meta1.bytes());
  const auto pm1b = b.decode(0, m1, dests(3, {1, 2}), r1b);
  ASSERT_TRUE(b.deliverable(*pm1b));
  b.deliver(*pm1b);

  serial::ByteWriter meta2(serial::ClockWidth::k4Bytes);
  const WriteId m2 = b.send(dests(3, {2}), meta2);

  // c receives m2 first: must wait (m1 → m2 and m1 is destined to c).
  serial::ByteReader r2c(meta2.bytes());
  const auto pm2c = c.decode(1, m2, dests(3, {2}), r2c);
  EXPECT_FALSE(c.deliverable(*pm2c));

  serial::ByteReader r1c(meta1.bytes());
  const auto pm1c = c.decode(0, m1, dests(3, {1, 2}), r1c);
  ASSERT_TRUE(c.deliverable(*pm1c));
  c.deliver(*pm1c);
  EXPECT_TRUE(c.deliverable(*pm2c));
  c.deliver(*pm2c);
  EXPECT_EQ(c.delivered_clock(0), 1u);
  EXPECT_EQ(c.delivered_clock(1), 1u);
}

TEST(KsProcess, ConcurrentSendsDeliverableInAnyOrder) {
  KsProcess a(0, 3), b(1, 3), c(2, 3);
  serial::ByteWriter ma(serial::ClockWidth::k4Bytes), mb(serial::ClockWidth::k4Bytes);
  const WriteId ia = a.send(dests(3, {2}), ma);
  const WriteId ib = b.send(dests(3, {2}), mb);
  serial::ByteReader ra(ma.bytes()), rb(mb.bytes());
  const auto pa = c.decode(0, ia, dests(3, {2}), ra);
  const auto pb = c.decode(1, ib, dests(3, {2}), rb);
  EXPECT_TRUE(c.deliverable(*pb));
  c.deliver(*pb);
  EXPECT_TRUE(c.deliverable(*pa));
  c.deliver(*pa);
}

TEST(KsProcessDeathTest, DeliverBeforeConditionPanics) {
  KsProcess a(0, 3), b(1, 3), c(2, 3);
  serial::ByteWriter meta1(serial::ClockWidth::k4Bytes);
  const WriteId m1 = a.send(dests(3, {1, 2}), meta1);
  serial::ByteReader r1(meta1.bytes());
  const auto pm1 = b.decode(0, m1, dests(3, {1, 2}), r1);
  b.deliver(*pm1);
  serial::ByteWriter meta2(serial::ClockWidth::k4Bytes);
  b.send(dests(3, {2}), meta2);
  serial::ByteReader r2(meta2.bytes());
  const auto pm2 = c.decode(1, WriteId{1, 1}, dests(3, {2}), r2);
  EXPECT_DEATH(c.deliver(*pm2), "delivery condition");
}

class GroupProperty : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(GroupProperty, RandomMulticastsAreCausallyDelivered) {
  const auto [n, seed] = GetParam();
  MulticastGroup::Options options;
  options.processes = static_cast<SiteId>(n);
  options.seed = seed;
  MulticastGroup group(options);

  sim::Pcg32 rng(seed, 0x6d63617374ULL);
  // Random processes multicast to random non-empty groups at random times.
  for (int k = 0; k < 60 * n; ++k) {
    const auto from = static_cast<SiteId>(rng.uniform_int(0, n - 1));
    DestSet d(static_cast<SiteId>(n));
    for (SiteId s = 0; s < n; ++s) {
      if (s != from && rng.bernoulli(0.4)) d.insert(s);
    }
    if (d.empty()) d.insert(static_cast<SiteId>((from + 1) % n));
    group.simulator().schedule_at(group.simulator().now(), [&group, from, d] {
      // note: sends happen inside the event loop at staggered times
      group.multicast(from, d);
    });
    group.simulator().run_until(group.simulator().now() + rng.uniform_int(0, 40));
  }
  group.run();

  EXPECT_TRUE(group.violations().empty())
      << group.violations().front() << " (n=" << n << " seed=" << seed << ")";
  EXPECT_GT(group.total_deliveries(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Grid, GroupProperty,
                         ::testing::Combine(::testing::Values(3, 5, 8),
                                            ::testing::Values(1ULL, 2ULL, 3ULL)));

TEST(Group, LogSizeStaysAmortizedLinear) {
  // The Chandra et al. [18] claim the paper's §V-A leans on: the KS log
  // holds amortized O(n) entries despite O(n²) worst case.
  MulticastGroup::Options options;
  options.processes = 12;
  options.seed = 7;
  options.verify = false;
  MulticastGroup group(options);

  sim::Pcg32 rng(7, 0x6c6f67ULL);
  for (int k = 0; k < 1500; ++k) {
    const auto from = static_cast<SiteId>(rng.uniform_int(0, 11));
    DestSet d(12);
    const auto size = static_cast<SiteId>(rng.uniform_int(1, 5));
    while (d.count() < size) {
      const auto s = static_cast<SiteId>(rng.uniform_int(0, 11));
      if (s != from) d.insert(s);
    }
    group.multicast(from, d);
    group.simulator().run_until(group.simulator().now() + 20 * kMillisecond);
  }
  group.run();
  EXPECT_LT(group.log_entries().mean(), 4.0 * 12);
}

}  // namespace
}  // namespace causim::ksmulticast
