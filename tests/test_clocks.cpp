// Unit tests for VectorClock / MatrixClock.
#include <gtest/gtest.h>

#include "causal/clocks.hpp"

namespace causim::causal {
namespace {

TEST(VectorClock, StartsAtZero) {
  const VectorClock v(4);
  for (SiteId i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0u);
  EXPECT_EQ(v.size(), 4);
}

TEST(VectorClock, MergeIsEntrywiseMax) {
  VectorClock a(3), b(3);
  a[0] = 5;
  a[2] = 1;
  b[0] = 3;
  b[1] = 7;
  a.merge(b);
  EXPECT_EQ(a[0], 5u);
  EXPECT_EQ(a[1], 7u);
  EXPECT_EQ(a[2], 1u);
}

TEST(VectorClock, MergeIsIdempotentAndCommutative) {
  VectorClock a(3), b(3);
  a[0] = 2;
  b[1] = 4;
  VectorClock ab = a;
  ab.merge(b);
  VectorClock ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  VectorClock twice = ab;
  twice.merge(b);
  EXPECT_EQ(twice, ab);
}

TEST(VectorClock, DominatedBy) {
  VectorClock a(2), b(2);
  b[0] = 1;
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_FALSE(b.dominated_by(a));
  EXPECT_TRUE(b.dominated_by(b));
  a[1] = 5;
  EXPECT_FALSE(a.dominated_by(b));  // incomparable
  EXPECT_FALSE(b.dominated_by(a));
}

TEST(VectorClock, SerializeRoundTripAndExactSize) {
  for (const serial::ClockWidth cw :
       {serial::ClockWidth::k4Bytes, serial::ClockWidth::k8Bytes}) {
    VectorClock v(5);
    v[3] = 1234567;
    serial::ByteWriter w(cw);
    v.serialize(w);
    EXPECT_EQ(w.size(), VectorClock::wire_bytes(5, cw));
    serial::ByteReader r(w.bytes(), cw);
    EXPECT_EQ(VectorClock::deserialize(r), v);
  }
}

TEST(MatrixClock, AtAndMerge) {
  MatrixClock a(3), b(3);
  a.at(0, 1) = 4;
  b.at(0, 1) = 2;
  b.at(2, 2) = 9;
  a.merge(b);
  EXPECT_EQ(a.at(0, 1), 4u);
  EXPECT_EQ(a.at(2, 2), 9u);
  EXPECT_EQ(a.at(1, 1), 0u);
}

TEST(MatrixClock, SerializeRoundTripAndExactSize) {
  MatrixClock m(4);
  m.at(1, 2) = 77;
  m.at(3, 0) = 5;
  serial::ByteWriter w;
  m.serialize(w);
  EXPECT_EQ(w.size(), MatrixClock::wire_bytes(4, serial::ClockWidth::k4Bytes));
  serial::ByteReader r(w.bytes());
  EXPECT_EQ(MatrixClock::deserialize(r), m);
}

TEST(MatrixClock, WireBytesQuadratic) {
  EXPECT_EQ(MatrixClock::wire_bytes(40, serial::ClockWidth::k4Bytes), 2u + 40 * 40 * 4);
  EXPECT_EQ(MatrixClock::wire_bytes(40, serial::ClockWidth::k8Bytes), 2u + 40 * 40 * 8);
}

TEST(ClockDeathTest, MergeSizeMismatchPanics) {
  VectorClock a(2);
  const VectorClock b(3);
  EXPECT_DEATH(a.merge(b), "size mismatch");
}

}  // namespace
}  // namespace causim::causal
