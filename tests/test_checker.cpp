// Unit tests for the causal-consistency checker on hand-built histories:
// valid executions pass; each violation class is detected.
#include <gtest/gtest.h>

#include "checker/causal_checker.hpp"

namespace causim::checker {
namespace {

constexpr SiteId kN = 3;

/// All variables replicated everywhere unless overridden.
DestSet everywhere(VarId) { return DestSet::all(kN); }

class HistoryBuilder {
 public:
  HistoryBuilder& write(SiteId s, VarId v, WriteId w) {
    rec_.record_write(s, v, w);
    return *this;
  }
  HistoryBuilder& apply(SiteId s, VarId v, WriteId w) {
    rec_.record_apply(s, v, w);
    return *this;
  }
  HistoryBuilder& read(SiteId s, VarId v, WriteId w) {
    rec_.record_read(s, v, w, false, s);
    return *this;
  }
  HistoryBuilder& serve(SiteId s, VarId v, WriteId w) {
    rec_.record_serve(s, v, w);
    return *this;
  }
  HistoryBuilder& remote_read(SiteId s, VarId v, WriteId w, SiteId responder) {
    rec_.record_read(s, v, w, true, responder);
    return *this;
  }

  CheckResult check(const std::function<DestSet(VarId)>& replicas = everywhere,
                    CheckOptions options = {}) {
    return check_causal_consistency(rec_.events(), kN, replicas, options);
  }

 private:
  HistoryRecorder rec_;
};

const WriteId w0{0, 1};
const WriteId w1{1, 1};

TEST(Checker, EmptyHistoryPasses) {
  HistoryBuilder h;
  EXPECT_TRUE(h.check().ok());
}

TEST(Checker, SimpleCausalChainPasses) {
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0).apply(1, 0, w0).read(1, 0, w0);
  h.write(1, 1, w1).apply(1, 1, w1).apply(0, 1, w1);
  h.apply(2, 0, w0).apply(2, 1, w1).read(2, 0, w0);
  const auto r = h.check();
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_EQ(r.writes, 2u);
  EXPECT_EQ(r.reads, 2u);
  EXPECT_EQ(r.applies, 6u);
}

TEST(Checker, DetectsCausalOrderViolation) {
  // w0 → (read) → w1 but site 2 applies w1 before w0.
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0).apply(1, 0, w0).read(1, 0, w0);
  h.write(1, 1, w1).apply(1, 1, w1).apply(0, 1, w1);
  h.apply(2, 1, w1).apply(2, 0, w0);  // out of causal order at site 2
  const auto r = h.check();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().find("causal predecessor"), std::string::npos);
}

TEST(Checker, ConcurrentWritesMayApplyInAnyOrder) {
  // No read-from edge between w0 and w1: both orders are fine.
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0);
  h.write(1, 1, w1).apply(1, 1, w1);
  h.apply(2, 1, w1).apply(2, 0, w0);
  h.apply(0, 1, w1).apply(1, 0, w0);
  EXPECT_TRUE(h.check().ok());
}

TEST(Checker, ProgramOrderAloneForcesApplyOrder) {
  const WriteId a{0, 1}, b{0, 2};
  HistoryBuilder h;
  h.write(0, 0, a).apply(0, 0, a);
  h.write(0, 1, b).apply(0, 1, b);
  h.apply(1, 1, b).apply(1, 0, a);  // b applied before its program-order pred
  const auto r = h.check();
  ASSERT_FALSE(r.ok());
}

TEST(Checker, DetectsDoubleApply) {
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0).apply(1, 0, w0).apply(1, 0, w0);
  const auto r = h.check();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().find("twice"), std::string::npos);
}

TEST(Checker, DetectsMissingApplies) {
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0);  // never applied at sites 1 and 2
  const auto r = h.check();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().find("expected 3"), std::string::npos);
}

TEST(Checker, DetectsApplyAtNonReplica) {
  const auto replicas = [](VarId) { return DestSet(kN, {0, 1}); };
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0).apply(1, 0, w0).apply(2, 0, w0);
  const auto r = h.check(replicas);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().find("non-replica"), std::string::npos);
}

TEST(Checker, DetectsReadBeforeApply) {
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0);
  h.read(1, 0, w0);  // site 1 never applied w0
  h.apply(1, 0, w0).apply(2, 0, w0);
  const auto r = h.check();
  ASSERT_FALSE(r.ok());
}

TEST(Checker, DetectsStaleRead) {
  const WriteId a{0, 1}, b{0, 2};
  HistoryBuilder h;
  h.write(0, 0, a).apply(0, 0, a);
  h.write(0, 0, b).apply(0, 0, b);
  h.read(0, 0, a);  // returns the overwritten value
  h.apply(1, 0, a).apply(1, 0, b).apply(2, 0, a).apply(2, 0, b);
  const auto r = h.check();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().find("latest"), std::string::npos);
}

TEST(Checker, DetectsBottomReadAfterApply) {
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0).apply(1, 0, w0).apply(2, 0, w0);
  h.read(1, 0, WriteId{});  // ⊥ although w0 was applied at site 1
  const auto r = h.check();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().find("⊥"), std::string::npos);
}

TEST(Checker, BottomReadBeforeAnyWritePasses) {
  HistoryBuilder h;
  h.read(1, 0, WriteId{});
  h.write(0, 0, w0).apply(0, 0, w0).apply(1, 0, w0).apply(2, 0, w0);
  EXPECT_TRUE(h.check().ok());
}

TEST(Checker, RemoteReadValidatedAtServeTime) {
  const auto replicas = [](VarId) { return DestSet(kN, {0, 1}); };
  const WriteId b{0, 2};
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0).apply(1, 0, w0);
  h.serve(1, 0, w0);  // site 1 serves w0 for site 2's fetch...
  h.write(0, 0, b).apply(0, 0, b).apply(1, 0, b);  // ...then b lands at 1...
  h.remote_read(2, 0, w0, 1);  // ...and the read completes later: still valid
  EXPECT_TRUE(h.check(replicas).ok());
}

TEST(Checker, DetectsStaleServe) {
  const auto replicas = [](VarId) { return DestSet(kN, {0, 1}); };
  const WriteId b{0, 2};
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0).apply(1, 0, w0);
  h.write(0, 0, b).apply(0, 0, b).apply(1, 0, b);
  h.serve(1, 0, w0);  // serves the overwritten value
  h.remote_read(2, 0, w0, 1);
  const auto r = h.check(replicas);
  ASSERT_FALSE(r.ok());
}

TEST(Checker, DetectsUnknownWriteInRead) {
  HistoryBuilder h;
  h.read(0, 0, WriteId{5, 99});
  const auto r = h.check();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().find("unknown write"), std::string::npos);
}

TEST(Checker, CountsStaleRemoteReads) {
  // Site 2's causal past contains w1 (it read it via site 1); a later
  // remote read of the same variable served by a lagging replica returns
  // ⊥ — stale, but not a violation by default.
  const auto replicas = [](VarId v) {
    return v == 0 ? DestSet(kN, {0, 1}) : DestSet::all(kN);
  };
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0).apply(1, 0, w0);
  h.serve(1, 0, w0);
  h.remote_read(2, 0, w0, 1);  // site 2 now causally knows w0
  h.serve(0, 0, w0);           // fine
  // A second write to var 0 lands at site 1 only for now.
  const WriteId b{0, 2};
  h.write(0, 0, b).apply(0, 0, b).apply(1, 0, b);
  h.serve(1, 0, b);
  h.remote_read(2, 0, b, 1);  // site 2 now knows b
  // Replica 0 has applied b by now in reality; pretend site 2 refetches
  // from a snapshot served before b applied there: build it via serve
  // order — serve at 0 happened earlier (see above), read completes late.
  h.remote_read(2, 0, w0, 0);  // returns w0 although b ∈ site 2's past
  auto r = h.check(replicas);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_EQ(r.stale_reads, 1u);

  // Strict mode promotes it to a violation.
  // (rebuild: check() consumed nothing, the recorder still holds events)
}

TEST(Checker, StrictModeFlagsStaleRead) {
  const auto replicas = [](VarId) { return DestSet(kN, {0, 1}); };
  const WriteId b{0, 2};
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0).apply(1, 0, w0);
  h.serve(1, 0, w0);
  h.remote_read(2, 0, w0, 1);
  h.write(0, 0, b).apply(0, 0, b).apply(1, 0, b);
  h.serve(1, 0, b);
  h.remote_read(2, 0, b, 1);
  h.serve(0, 0, b);  // replica 0 is fresh when serving…
  h.remote_read(2, 0, w0, 0);  // …but the read still claims the old value
  // note: the serve above returned b; returning w0 at the read is also a
  // read-from/serve mismatch in a real run — here we only exercise the
  // freshness rule, which fires regardless.
  CheckResult relaxed = h.check(replicas);
  EXPECT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed.stale_reads, 1u);

  CheckOptions strict;
  strict.strict_read_freshness = true;
  const CheckResult strict_result = h.check(replicas, strict);
  ASSERT_FALSE(strict_result.ok());
  EXPECT_NE(strict_result.violations.front().find("stale read"), std::string::npos);
}

TEST(Checker, OwnWriteThenBottomReadIsStale) {
  const auto replicas = [](VarId) { return DestSet(kN, {0, 1}); };
  HistoryBuilder h;
  // Site 2 writes var 0 (not locally replicated), then fetches it from a
  // replica that has not applied it yet.
  const WriteId w2{2, 1};
  h.write(2, 0, w2);
  h.serve(0, 0, WriteId{});       // replica 0 still at ⊥
  h.remote_read(2, 0, WriteId{}, 0);
  h.apply(0, 0, w2).apply(1, 0, w2);
  const CheckResult r = h.check(replicas);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.stale_reads, 1u);
}

TEST(Checker, ConcurrentNewerValueIsNotStale) {
  // The read returns w1 while w0 (concurrent with w1) is in the reader's
  // past: any serialization may order w0 before w1, so this is fresh.
  HistoryBuilder h;
  h.write(0, 0, w0).apply(0, 0, w0);
  h.write(1, 0, w1).apply(1, 0, w1);
  h.apply(1, 0, w0).apply(0, 0, w1);
  h.apply(2, 0, w0).read(2, 0, w0);  // w0 enters site 2's past
  h.apply(2, 0, w1).read(2, 0, w1);  // returns concurrent w1: fine
  const CheckResult r = h.check();
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_EQ(r.stale_reads, 0u);
}

TEST(Checker, DetectsPerWriterOrderInversion) {
  const WriteId a{0, 1}, b{0, 2};
  HistoryBuilder h;
  // No read-from edges, so only the per-writer FIFO rule can catch this.
  h.write(0, 0, a);
  h.write(0, 1, b);
  h.apply(0, 0, a).apply(0, 1, b);
  h.apply(1, 1, b).apply(1, 0, a);
  h.apply(2, 0, a).apply(2, 1, b);
  const auto r = h.check();
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace causim::checker
