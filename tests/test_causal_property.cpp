// Property tests: every protocol, over a grid of (n, p, w_rate, seed),
// produces causally consistent executions under randomized schedules and
// adversarially wide channel-latency distributions.
#include <gtest/gtest.h>

#include <tuple>

#include "bench_support/experiment.hpp"
#include "dsm/cluster.hpp"
#include "workload/schedule.hpp"

namespace causim {
namespace {

using causal::ProtocolKind;

struct PropertyCase {
  ProtocolKind protocol;
  SiteId sites;
  double write_rate;
  std::uint64_t seed;
};

class CausalProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(CausalProperty, ExecutionIsCausallyConsistent) {
  const PropertyCase& c = GetParam();
  dsm::ClusterConfig config;
  config.sites = c.sites;
  config.variables = 15;
  config.replication = causal::requires_full_replication(c.protocol)
                           ? 0
                           : bench_support::partial_replication_factor(c.sites);
  config.protocol = c.protocol;
  config.seed = c.seed;
  // A very wide latency band maximizes cross-channel reordering, which is
  // what stresses the activation predicate.
  config.latency_lo = 1 * kMillisecond;
  config.latency_hi = 2000 * kMillisecond;

  workload::WorkloadParams wl;
  wl.variables = 15;
  wl.write_rate = c.write_rate;
  wl.ops_per_site = 120;
  wl.seed = c.seed;

  dsm::Cluster cluster(config);
  cluster.execute(workload::generate_schedule(c.sites, wl));
  const auto result = cluster.check();
  EXPECT_TRUE(result.ok()) << to_string(c.protocol) << " n=" << c.sites << " w="
                           << c.write_rate << " seed=" << c.seed << ": "
                           << (result.violations.empty() ? "" : result.violations.front());
  EXPECT_GT(result.applies, 0u);
}

std::vector<PropertyCase> property_grid() {
  std::vector<PropertyCase> cases;
  for (const ProtocolKind kind :
       {ProtocolKind::kFullTrack, ProtocolKind::kOptTrack, ProtocolKind::kOptTrackCrp,
        ProtocolKind::kOptP, ProtocolKind::kFullTrackHb}) {
    for (const SiteId n : {3, 6, 10}) {
      for (const double w : {0.2, 0.8}) {
        for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
          cases.push_back({kind, n, w, seed});
        }
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<PropertyCase>& param_info) {
  const PropertyCase& c = param_info.param;
  std::string name = to_string(c.protocol);
  for (auto& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_n" + std::to_string(c.sites) + "_w" +
         std::to_string(static_cast<int>(c.write_rate * 10)) + "_s" +
         std::to_string(c.seed);
}

INSTANTIATE_TEST_SUITE_P(Grid, CausalProperty, ::testing::ValuesIn(property_grid()),
                         case_name);

// --- cross-protocol invariants on identical schedules ---

class PartialPair : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(PartialPair, OptTrackAndFullTrackSendIdenticalMessageCounts) {
  const auto [wrate, seed] = GetParam();
  bench_support::ExperimentParams params;
  params.sites = 8;
  params.replication = bench_support::partial_replication_factor(8);
  params.write_rate = wrate;
  params.ops_per_site = 150;
  params.seeds = {seed};

  params.protocol = causal::ProtocolKind::kOptTrack;
  const auto opt = bench_support::run_experiment(params);
  params.protocol = causal::ProtocolKind::kFullTrack;
  const auto full = bench_support::run_experiment(params);

  // Same schedule + same placement ⇒ identical message pattern; only the
  // piggybacked meta-data differs (§V-A: "Opt-Track runs the same message
  // pattern … its message count complexity is also the same").
  EXPECT_EQ(opt.stats.of(MessageKind::kSM).count, full.stats.of(MessageKind::kSM).count);
  EXPECT_EQ(opt.stats.of(MessageKind::kFM).count, full.stats.of(MessageKind::kFM).count);
  EXPECT_EQ(opt.stats.of(MessageKind::kRM).count, full.stats.of(MessageKind::kRM).count);
  // And Opt-Track's meta-data never exceeds Full-Track's total.
  EXPECT_LE(opt.stats.total().meta_bytes, full.stats.total().meta_bytes);
}

TEST_P(PartialPair, CrpAndOptPSendIdenticalMessageCounts) {
  const auto [wrate, seed] = GetParam();
  bench_support::ExperimentParams params;
  params.sites = 8;
  params.replication = 0;
  params.write_rate = wrate;
  params.ops_per_site = 150;
  params.seeds = {seed};

  params.protocol = causal::ProtocolKind::kOptTrackCrp;
  const auto crp = bench_support::run_experiment(params);
  params.protocol = causal::ProtocolKind::kOptP;
  const auto optp = bench_support::run_experiment(params);

  EXPECT_EQ(crp.stats.total().count, optp.stats.total().count);
}

INSTANTIATE_TEST_SUITE_P(Rates, PartialPair,
                         ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),
                                            ::testing::Values(1ULL, 7ULL)));

TEST(CrossProtocol, OptTrackWorksUnderFullReplication) {
  // Opt-Track is a generalization: with p = n it must behave like a
  // (heavier) Opt-Track-CRP — same counts, causally consistent.
  bench_support::ExperimentParams params;
  params.sites = 6;
  params.replication = 6;
  params.write_rate = 0.5;
  params.ops_per_site = 100;
  params.seeds = {13};
  params.check = true;
  params.protocol = causal::ProtocolKind::kOptTrack;
  const auto opt = bench_support::run_experiment(params);
  EXPECT_TRUE(opt.check_ok) << (opt.violations.empty() ? "" : opt.violations.front());

  params.protocol = causal::ProtocolKind::kOptTrackCrp;
  params.replication = 0;
  const auto crp = bench_support::run_experiment(params);
  EXPECT_EQ(opt.stats.total().count, crp.stats.total().count);
  // CRP's specialization pays off in bytes.
  EXPECT_LT(crp.stats.total().meta_bytes, opt.stats.total().meta_bytes);
}

TEST(CrossProtocol, CrpLogStaysWithinPaperBound) {
  // §III-C: the Opt-Track-CRP local log holds at most d + 1 <= n entries.
  bench_support::ExperimentParams params;
  params.sites = 8;
  params.replication = 0;
  params.write_rate = 0.2;  // read-heavy maximizes d
  params.ops_per_site = 200;
  params.seeds = {3};
  params.protocol = causal::ProtocolKind::kOptTrackCrp;
  const auto r = bench_support::run_experiment(params);
  EXPECT_LE(r.log_entries.max(), 8.0);
}

TEST(CrossProtocol, WriteIntensityReducesOptTrackOverhead) {
  // §V-A-2: higher write rate ⇒ lower average SM+RM overhead in Opt-Track.
  bench_support::ExperimentParams params;
  params.sites = 10;
  params.replication = 3;
  params.ops_per_site = 300;
  params.seeds = {5};
  params.protocol = causal::ProtocolKind::kOptTrack;

  params.write_rate = 0.2;
  const auto low = bench_support::run_experiment(params);
  params.write_rate = 0.8;
  const auto high = bench_support::run_experiment(params);
  EXPECT_LT(high.avg_overhead(MessageKind::kSM), low.avg_overhead(MessageKind::kSM));
}

}  // namespace
}  // namespace causim
