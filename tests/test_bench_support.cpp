// Unit tests for the experiment harness shared by the bench binaries and
// the CLI flag parser.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "bench_support/args.hpp"
#include "bench_support/experiment.hpp"
#include "bench_support/observability.hpp"

namespace causim::bench_support {
namespace {

TEST(BenchSupport, PartialReplicationFactorMatchesPaper) {
  // p = 0.3·n for the paper's sweep points; never below 1.
  EXPECT_EQ(partial_replication_factor(5), 2);   // 1.5 → 2
  EXPECT_EQ(partial_replication_factor(10), 3);
  EXPECT_EQ(partial_replication_factor(20), 6);
  EXPECT_EQ(partial_replication_factor(30), 9);
  EXPECT_EQ(partial_replication_factor(40), 12);
  EXPECT_EQ(partial_replication_factor(1), 1);
  EXPECT_EQ(partial_replication_factor(2), 1);
}

TEST(BenchSupport, ParseArgs) {
  const char* argv1[] = {"bench", "--quick"};
  auto o = parse_bench_args(2, const_cast<char**>(argv1));
  EXPECT_TRUE(o.quick);
  EXPECT_FALSE(o.csv);

  const char* argv2[] = {"bench", "--csv", "--quick"};
  o = parse_bench_args(3, const_cast<char**>(argv2));
  EXPECT_TRUE(o.quick);
  EXPECT_TRUE(o.csv);

  o = parse_bench_args(1, const_cast<char**>(argv1));
  EXPECT_FALSE(o.quick);
}

TEST(BenchSupport, ParseArgsAcceptsValueFlagsInBothStyles) {
  const char* argv[] = {"bench", "--trace-out=t.json", "--metrics-out", "m.csv",
                        "--report-out=r.json"};
  BenchOptions o;
  std::string error;
  ASSERT_TRUE(try_parse_bench_args(5, const_cast<char**>(argv), o, error)) << error;
  EXPECT_EQ(o.trace_out, "t.json");
  EXPECT_EQ(o.metrics_out, "m.csv");
  EXPECT_EQ(o.report_out, "r.json");
}

TEST(BenchSupport, ParseArgsRejectsUnknownFlag) {
  // A typoed flag must surface, not silently fall through to a default
  // full-length run.
  const char* argv[] = {"bench", "--qucik"};
  BenchOptions o;
  std::string error;
  EXPECT_FALSE(try_parse_bench_args(2, const_cast<char**>(argv), o, error));
  EXPECT_NE(error.find("--qucik"), std::string::npos);
}

TEST(BenchSupport, ParseArgsAcceptsArqFlagsInBothStyles) {
  const char* argv[] = {"bench", "--arq=sr", "--adaptive-rto"};
  BenchOptions o;
  std::string error;
  ASSERT_TRUE(try_parse_bench_args(3, const_cast<char**>(argv), o, error)) << error;
  EXPECT_EQ(o.arq, net::ArqMode::kSelectiveRepeat);
  EXPECT_TRUE(o.adaptive_rto);

  const char* detached[] = {"bench", "--arq", "gbn"};
  BenchOptions d;
  ASSERT_TRUE(try_parse_bench_args(3, const_cast<char**>(detached), d, error)) << error;
  EXPECT_EQ(d.arq, net::ArqMode::kGoBackN);
  EXPECT_FALSE(d.adaptive_rto);  // defaults stay byte-identical to go-back-N

  net::ReliableConfig rc;
  apply_arq_options(rc, o);
  EXPECT_EQ(rc.arq, net::ArqMode::kSelectiveRepeat);
  EXPECT_TRUE(rc.adaptive_rto);
}

TEST(BenchSupport, ParseArgsRejectsBadArqMode) {
  const char* argv[] = {"bench", "--arq=tcp"};
  BenchOptions o;
  std::string error;
  EXPECT_FALSE(try_parse_bench_args(2, const_cast<char**>(argv), o, error));
  EXPECT_NE(error.find("tcp"), std::string::npos);
  EXPECT_NE(error.find("gbn"), std::string::npos) << "error should name the choices";
}

TEST(BenchSupport, ParseArgsAcceptsPooledExecutorFlags) {
  const char* argv[] = {"bench", "--executor", "pooled", "--workers=4",
                        "--batch", "8"};
  BenchOptions o;
  std::string error;
  ASSERT_TRUE(try_parse_bench_args(6, const_cast<char**>(argv), o, error)) << error;
  EXPECT_EQ(o.executor, engine::ExecutorKind::kPooled);
  EXPECT_EQ(o.workers, 4);
  EXPECT_TRUE(o.workers_set);
  EXPECT_EQ(o.batch, 8);

  ExperimentParams params;
  apply_executor_options(params, o);
  EXPECT_EQ(params.executor, engine::ExecutorKind::kPooled);
  EXPECT_EQ(params.workers, 4u);
  EXPECT_TRUE(params.batch.enabled);
  EXPECT_EQ(params.batch.max_messages, 8u);
}

TEST(BenchSupport, ParseArgsPooledWithoutWorkersUsesHardwareCount) {
  const char* argv[] = {"bench", "--executor=pooled"};
  BenchOptions o;
  std::string error;
  ASSERT_TRUE(try_parse_bench_args(2, const_cast<char**>(argv), o, error)) << error;
  EXPECT_EQ(o.executor, engine::ExecutorKind::kPooled);
  EXPECT_FALSE(o.workers_set);

  ExperimentParams params;
  apply_executor_options(params, o);
  EXPECT_EQ(params.workers, 0u);  // 0 = one worker per hardware thread
  EXPECT_FALSE(params.batch.enabled);  // coalescing stays opt-in
}

TEST(BenchSupport, ParseArgsRejectsBogusExecutor) {
  const char* argv[] = {"bench", "--executor=fibers"};
  BenchOptions o;
  std::string error;
  EXPECT_FALSE(try_parse_bench_args(2, const_cast<char**>(argv), o, error));
  EXPECT_NE(error.find("fibers"), std::string::npos);
  EXPECT_NE(error.find("pooled"), std::string::npos)
      << "error should name the choices";
}

TEST(BenchSupport, ParseArgsRejectsDegenerateWorkerCounts) {
  for (const char* bad : {"--workers=0", "--workers=-1"}) {
    const char* argv[] = {"bench", "--executor=pooled", bad};
    BenchOptions o;
    std::string error;
    EXPECT_FALSE(try_parse_bench_args(3, const_cast<char**>(argv), o, error))
        << bad;
    EXPECT_NE(error.find(">= 1"), std::string::npos) << error;
  }
  const char* argv[] = {"bench", "--executor=pooled", "--workers=nope"};
  BenchOptions o;
  std::string error;
  EXPECT_FALSE(try_parse_bench_args(3, const_cast<char**>(argv), o, error));
  EXPECT_NE(error.find("nope"), std::string::npos);
}

TEST(BenchSupport, ParseArgsRejectsWorkersWithPerSiteExecutor) {
  // --workers silently ignored would be worse than an error: the user asked
  // for a pool they are not getting. Flag order must not matter.
  const char* implicit[] = {"bench", "--workers", "4"};
  BenchOptions o;
  std::string error;
  EXPECT_FALSE(try_parse_bench_args(3, const_cast<char**>(implicit), o, error));
  EXPECT_NE(error.find("--executor pooled"), std::string::npos)
      << "error must say how to fix it: " << error;

  const char* explicit_per_site[] = {"bench", "--workers=4",
                                     "--executor=per-site"};
  BenchOptions o2;
  EXPECT_FALSE(
      try_parse_bench_args(3, const_cast<char**>(explicit_per_site), o2, error));
  EXPECT_NE(error.find("--executor pooled"), std::string::npos) << error;

  // And the reversed order: --executor pooled after --workers is fine.
  const char* ok[] = {"bench", "--workers", "4", "--executor", "pooled"};
  BenchOptions o3;
  EXPECT_TRUE(try_parse_bench_args(5, const_cast<char**>(ok), o3, error)) << error;
}

TEST(BenchSupport, ParseArgsRejectsDegenerateBatchThreshold) {
  const char* argv[] = {"bench", "--batch=0"};
  BenchOptions o;
  std::string error;
  EXPECT_FALSE(try_parse_bench_args(2, const_cast<char**>(argv), o, error));
  EXPECT_NE(error.find("--batch"), std::string::npos);
}

TEST(BenchSupport, ParseArgsAcceptsTopologyAndGatewayFlags) {
  const char* argv[] = {"bench", "--topology=cells=3:wan-rtt=80000:loss=0.05",
                        "--gateway", "on"};
  BenchOptions o;
  std::string error;
  ASSERT_TRUE(try_parse_bench_args(4, const_cast<char**>(argv), o, error)) << error;
  EXPECT_TRUE(o.topology_set);
  EXPECT_EQ(o.topo_cells, 3);
  EXPECT_EQ(o.topo_wan_rtt_us, 80000);
  EXPECT_DOUBLE_EQ(o.topo_wan_loss, 0.05);
  EXPECT_TRUE(o.gateway_set);
  EXPECT_TRUE(o.gateway_on);

  // loss is optional and key order inside the spec must not matter.
  const char* reordered[] = {"bench", "--topology", "wan-rtt=40000:cells=2"};
  BenchOptions o2;
  ASSERT_TRUE(try_parse_bench_args(3, const_cast<char**>(reordered), o2, error))
      << error;
  EXPECT_EQ(o2.topo_cells, 2);
  EXPECT_EQ(o2.topo_wan_rtt_us, 40000);
  EXPECT_DOUBLE_EQ(o2.topo_wan_loss, 0.0);
  EXPECT_FALSE(o2.gateway_set);
}

TEST(BenchSupport, ParseArgsRejectsMalformedTopologySpecs) {
  const struct {
    const char* spec;
    const char* needle;
  } cases[] = {
      {"--topology=cells=2", "needs both cells=K and wan-rtt=US"},
      {"--topology=wan-rtt=80000", "needs both cells=K and wan-rtt=US"},
      {"--topology=cells=0:wan-rtt=80000", "cells expects an integer >= 1"},
      {"--topology=cells=x:wan-rtt=80000", "cells expects an integer >= 1"},
      {"--topology=cells=2:wan-rtt=1", "round-trip time >= 2"},
      {"--topology=cells=2:wan-rtt=80000:loss=1.0", "drop rate in [0, 1)"},
      {"--topology=cells=2:wan-rtt=80000:hops=3", "has no key 'hops'"},
      {"--topology=cells", "key=value"},
  };
  for (const auto& c : cases) {
    const char* argv[] = {"bench", c.spec};
    BenchOptions o;
    std::string error;
    EXPECT_FALSE(try_parse_bench_args(2, const_cast<char**>(argv), o, error))
        << c.spec;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << c.spec << " -> " << error;
  }
}

TEST(BenchSupport, ParseArgsRejectsBogusGatewayValue) {
  const char* argv[] = {"bench", "--gateway=maybe"};
  BenchOptions o;
  std::string error;
  EXPECT_FALSE(try_parse_bench_args(2, const_cast<char**>(argv), o, error));
  EXPECT_NE(error.find("on or off"), std::string::npos);
}

TEST(BenchSupport, ParseArgsRejectsGatewayOnWithoutMultiCellTopology) {
  // Flag order must not matter: the cross-flag rule fires whether
  // --gateway comes before or after --topology, and a one-cell topology
  // is as useless to the gateway as no topology at all.
  const char* no_topo[] = {"bench", "--gateway=on"};
  BenchOptions o;
  std::string error;
  EXPECT_FALSE(try_parse_bench_args(2, const_cast<char**>(no_topo), o, error));
  EXPECT_NE(error.find("--topology cells=K:wan-rtt=US"), std::string::npos);

  const char* one_cell[] = {"bench", "--gateway=on",
                            "--topology=cells=1:wan-rtt=80000"};
  BenchOptions o2;
  EXPECT_FALSE(try_parse_bench_args(3, const_cast<char**>(one_cell), o2, error));
  EXPECT_NE(error.find("K >= 2"), std::string::npos);

  // --gateway off never needs a topology.
  const char* off[] = {"bench", "--gateway=off"};
  BenchOptions o3;
  EXPECT_TRUE(try_parse_bench_args(2, const_cast<char**>(off), o3, error))
      << error;
}

TEST(BenchSupport, ApplyTopologyOptionsBuildsBlocksAndWanProfile) {
  const char* argv[] = {"bench", "--topology=cells=2:wan-rtt=80000:loss=0.1",
                        "--gateway=on"};
  BenchOptions o;
  std::string error;
  ASSERT_TRUE(try_parse_bench_args(3, const_cast<char**>(argv), o, error)) << error;

  ExperimentParams params;
  params.sites = 8;
  apply_topology_options(params, o);
  ASSERT_TRUE(params.topology.enabled());
  EXPECT_EQ(params.topology.cell_count(), 2u);
  // Fixed one-way WAN delay of rtt/2 with the requested loss.
  EXPECT_EQ(params.topology.inter.latency_lo, 40000);
  EXPECT_EQ(params.topology.inter.latency_hi, 40000);
  EXPECT_DOUBLE_EQ(params.topology.inter.faults.drop_rate, 0.1);
  EXPECT_TRUE(params.gateway.enabled);

  // Without --topology the params stay flat (byte-identical default).
  ExperimentParams untouched;
  apply_topology_options(untouched, BenchOptions{});
  EXPECT_FALSE(untouched.topology.enabled());
  EXPECT_FALSE(untouched.gateway.enabled);
}

TEST(BenchSupport, ParseArgsRejectsPositionalArguments) {
  const char* argv[] = {"bench", "quick"};
  BenchOptions o;
  std::string error;
  EXPECT_FALSE(try_parse_bench_args(2, const_cast<char**>(argv), o, error));
}

TEST(BenchSupport, ParseArgsRejectsValueFlagMissingItsValue) {
  const char* argv[] = {"bench", "--trace-out"};
  BenchOptions o;
  std::string error;
  EXPECT_FALSE(try_parse_bench_args(2, const_cast<char**>(argv), o, error));
  EXPECT_NE(error.find("--trace-out"), std::string::npos);
}

TEST(BenchSupport, BenchUsageNamesEveryFlag) {
  const std::string usage = bench_usage("bench");
  for (const char* flag : {"--quick", "--csv", "--trace-out", "--metrics-out",
                           "--report-out", "--arq", "--adaptive-rto",
                           "--executor", "--workers", "--batch", "--topology",
                           "--gateway"}) {
    EXPECT_NE(usage.find(flag), std::string::npos) << flag;
  }
}

TEST(BenchSupport, ApplyQuickShrinksRuns) {
  ExperimentParams params;
  params.seeds = {1, 2, 3};
  params.ops_per_site = 600;
  BenchOptions options;
  apply_quick(params, options);  // not quick: unchanged
  EXPECT_EQ(params.seeds.size(), 3u);
  options.quick = true;
  apply_quick(params, options);
  EXPECT_EQ(params.seeds.size(), 1u);
  EXPECT_EQ(params.ops_per_site, 300u);
}

TEST(BenchSupport, JdkLikeOptionsUseWideClocks) {
  EXPECT_EQ(jdk_like_options().clock_width, serial::ClockWidth::k8Bytes);
  // And that is the bench default.
  EXPECT_EQ(ExperimentParams{}.protocol_options.clock_width, serial::ClockWidth::k8Bytes);
}

TEST(BenchSupport, RunExperimentAggregatesSeeds) {
  ExperimentParams params;
  params.protocol = causal::ProtocolKind::kOptTrackCrp;
  params.sites = 4;
  params.write_rate = 0.5;
  params.variables = 10;
  params.ops_per_site = 60;
  params.seeds = {1, 2};
  const auto r = run_experiment(params);
  EXPECT_EQ(r.runs, 2u);
  EXPECT_GT(r.recorded_writes, 0u);
  EXPECT_GT(r.recorded_reads, 0u);
  // Full replication: per-run message count = (n-1)·w exactly, so the mean
  // equals (n-1)·(total recorded writes / runs).
  EXPECT_DOUBLE_EQ(r.mean_message_count(),
                   3.0 * static_cast<double>(r.recorded_writes) / 2.0);
  EXPECT_GT(r.mean_total_overhead_bytes(), 0.0);
  EXPECT_GT(r.log_entries.count(), 0u);
}

TEST(BenchSupport, CheckFlagRunsChecker) {
  ExperimentParams params;
  params.protocol = causal::ProtocolKind::kOptTrack;
  params.sites = 5;
  params.replication = 2;
  params.variables = 10;
  params.ops_per_site = 50;
  params.seeds = {3};
  params.check = true;
  const auto r = run_experiment(params);
  EXPECT_TRUE(r.check_ok) << (r.violations.empty() ? "" : r.violations.front());
}

TEST(Observability, RejectsUnwritableOutputPathUpFront) {
  // Regression: --trace-out into a nonexistent directory used to run the
  // whole grid and only fail (or silently lose the trace) at finish().
  // Every output flag must fail fast at construction with ok() == false.
  for (const char* flag : {"--trace-out", "--metrics-out", "--report-out",
                           "--json-out", "--timeseries-out"}) {
    const std::string arg =
        std::string(flag) + "=/nonexistent-causim-dir/out.json";
    const char* argv[] = {"bench", arg.c_str()};
    BenchOptions options;
    std::string error;
    ASSERT_TRUE(try_parse_bench_args(2, const_cast<char**>(argv), options, error))
        << error;
    testing::internal::CaptureStderr();
    Observability observability(options, "test");
    const std::string log = testing::internal::GetCapturedStderr();
    EXPECT_FALSE(observability.ok()) << flag;
    EXPECT_FALSE(observability.finish()) << flag;
    // The error is actionable: it names the flag, the path and the OS
    // reason.
    EXPECT_NE(log.find(flag), std::string::npos) << log;
    EXPECT_NE(log.find("/nonexistent-causim-dir/out.json"), std::string::npos)
        << log;
  }
}

TEST(Observability, AcceptsWritablePathsAndWritesBenchV1) {
  const std::string json_path = ::testing::TempDir() + "causim_bench_v1.json";
  BenchOptions options;
  options.json_out = json_path;
  Observability observability(options, "unit_bench");
  ASSERT_TRUE(observability.ok());

  ExperimentParams params;
  params.protocol = causal::ProtocolKind::kOptTrack;
  params.sites = 4;
  params.replication = 2;
  params.variables = 10;
  params.ops_per_site = 40;
  params.seeds = {1};
  const auto r = observability.run_cell("Opt-Track n=4", params);
  EXPECT_EQ(r.runs, 1u);
  ASSERT_TRUE(observability.finish());

  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  EXPECT_NE(doc.find("\"schema\":\"causim.bench.v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(doc.find("\"label\":\"Opt-Track n=4\""), std::string::npos);
  EXPECT_NE(doc.find("\"protocol\":\"Opt-Track\""), std::string::npos);
  // --json-out attaches the live visibility tracker per cell.
  EXPECT_NE(doc.find("\"visibility_us\""), std::string::npos);
  EXPECT_NE(doc.find("\"unmatched\":0"), std::string::npos);
  std::remove(json_path.c_str());
}

TEST(Args, ParsesValuesInBothStyles) {
  const char* argv[] = {"prog", "cmd", "--n", "20", "--wrate=0.5", "--check"};
  std::string error;
  const auto args = Args::parse(6, const_cast<char**>(argv), 2,
                                {"n", "wrate", "check"}, &error);
  ASSERT_TRUE(args.has_value()) << error;
  EXPECT_EQ(args->get_int("n", 0), 20);
  EXPECT_DOUBLE_EQ(args->get_double("wrate", 0.0), 0.5);
  EXPECT_TRUE(args->has("check"));
  EXPECT_FALSE(args->has("csv"));
  EXPECT_EQ(args->get("missing", "fallback"), "fallback");
}

TEST(Args, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "cmd", "--bogus", "1"};
  std::string error;
  const auto args = Args::parse(4, const_cast<char**>(argv), 2, {"n"}, &error);
  EXPECT_FALSE(args.has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos);
}

TEST(Args, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "cmd", "stray"};
  std::string error;
  const auto args = Args::parse(3, const_cast<char**>(argv), 2, {"n"}, &error);
  EXPECT_FALSE(args.has_value());
  EXPECT_NE(error.find("positional"), std::string::npos);
}

TEST(Args, IntListParsing) {
  const char* argv[] = {"prog", "cmd", "--values", "5,10,20"};
  std::string error;
  const auto args = Args::parse(4, const_cast<char**>(argv), 2, {"values"}, &error);
  ASSERT_TRUE(args.has_value()) << error;
  EXPECT_EQ(args->get_int_list("values", {}), (std::vector<long>{5, 10, 20}));
  EXPECT_EQ(args->get_int_list("absent", {1, 2}), (std::vector<long>{1, 2}));
}

TEST(Args, BooleanFlagBeforeAnotherFlag) {
  const char* argv[] = {"prog", "cmd", "--check", "--n", "7"};
  std::string error;
  const auto args = Args::parse(5, const_cast<char**>(argv), 2, {"check", "n"}, &error);
  ASSERT_TRUE(args.has_value()) << error;
  EXPECT_TRUE(args->has("check"));
  EXPECT_EQ(args->get_int("n", 0), 7);
}

}  // namespace
}  // namespace causim::bench_support
