// Unit tests for the Opt-Track protocol: KS-log maintenance, the activation
// predicate, the two implicit pruning conditions, and merge-on-read.
#include <gtest/gtest.h>

#include "causal/opt_track.hpp"

namespace causim::causal {
namespace {

constexpr SiteId kN = 5;

DestSet dests(std::initializer_list<SiteId> sites) { return DestSet(kN, sites); }

serial::Bytes write_at(OptTrack& p, VarId var, const DestSet& d, WriteId* id) {
  serial::ByteWriter meta;
  *id = p.local_write(var, Value{1, 0}, d, meta);
  return meta.take();
}

std::unique_ptr<PendingUpdate> make_pending(OptTrack& receiver, SiteId sender, VarId var,
                                            const WriteId& id, const DestSet& d,
                                            const serial::Bytes& meta) {
  serial::ByteReader r(meta);
  return receiver.decode_sm(SmEnvelope{sender, var, Value{1, 0}, id}, d, r);
}

TEST(OptTrack, FirstWritePiggybacksEmptyLog) {
  OptTrack p(0, kN);
  WriteId id;
  const auto meta = write_at(p, 0, dests({0, 1}), &id);
  serial::ByteReader r(meta);
  EXPECT_TRUE(KsLog::deserialize(r).empty());
  EXPECT_EQ(id, (WriteId{0, 1}));
}

TEST(OptTrack, LocalWriteEntersLogWithoutSelf) {
  OptTrack p(0, kN);
  WriteId id;
  write_at(p, 0, dests({0, 1, 2}), &id);
  ASSERT_NE(p.log().find(id), nullptr);
  EXPECT_EQ(*p.log().find(id), dests({1, 2}));  // condition (1): self applied
  EXPECT_EQ(p.applied_clock(0), 1u);
}

TEST(OptTrack, SendTimePruningDropsCoveredDests) {
  // Condition (2): a second write to an overlapping replica set prunes the
  // first entry's common destinations.
  OptTrack p(0, kN);
  WriteId w1, w2;
  write_at(p, 0, dests({0, 1, 2}), &w1);
  write_at(p, 1, dests({0, 2, 3}), &w2);
  ASSERT_NE(p.log().find(w1), nullptr);
  EXPECT_EQ(*p.log().find(w1), dests({1}));  // 2 covered by w2's multicast
  EXPECT_EQ(*p.log().find(w2), dests({2, 3}));
}

TEST(OptTrack, IndependentWriteImmediatelyReady) {
  OptTrack a(0, kN), b(1, kN);
  WriteId id;
  const auto meta = write_at(a, 0, dests({0, 1}), &id);
  const auto pending = make_pending(b, 0, 0, id, dests({0, 1}), meta);
  EXPECT_TRUE(b.ready(*pending));
  b.apply(*pending);
  EXPECT_EQ(b.applied_clock(0), 1u);
}

TEST(OptTrack, ProgramOrderGatesSecondWrite) {
  OptTrack a(0, kN), b(1, kN);
  const DestSet d = dests({0, 1});
  WriteId w1, w2;
  const auto m1 = write_at(a, 0, d, &w1);
  const auto m2 = write_at(a, 0, d, &w2);
  const auto p2 = make_pending(b, 0, 0, w2, d, m2);
  EXPECT_FALSE(b.ready(*p2));
  const auto p1 = make_pending(b, 0, 0, w1, d, m1);
  ASSERT_TRUE(b.ready(*p1));
  b.apply(*p1);
  EXPECT_TRUE(b.ready(*p2));
}

TEST(OptTrack, ReadCreatesCausalDependencyAcrossWriters) {
  // s0 writes x to {0,1}; s1 applies it, reads it, then writes y: y's
  // piggybacked log must carry x's entry — with s1 pruned (it applied x,
  // condition (1)) but the writer-side replica 0 still listed.
  OptTrack s0(0, kN), s1(1, kN);
  WriteId wx, wy;
  const auto mx = write_at(s0, 0, dests({0, 1}), &wx);
  const auto px = make_pending(s1, 0, 0, wx, dests({0, 1}), mx);
  ASSERT_TRUE(s1.ready(*px));
  s1.apply(*px);
  s1.local_read(0);

  const auto my = write_at(s1, 1, dests({1, 2}), &wy);
  serial::ByteReader r(my);
  const KsLog piggyback = KsLog::deserialize(r);
  ASSERT_NE(piggyback.find(wx), nullptr);
  EXPECT_EQ(*piggyback.find(wx), dests({0}));
}

TEST(OptTrack, PredicateWaitsForPiggybackedDependency) {
  // x destined to {1,2}; s1 reads x then writes y to {1,2}; s2 must apply x
  // before y.
  OptTrack s0(0, kN), s1(1, kN), s2(2, kN);
  WriteId wx, wy;
  const auto mx = write_at(s0, 0, dests({1, 2}), &wx);
  const auto px1 = make_pending(s1, 0, 0, wx, dests({1, 2}), mx);
  ASSERT_TRUE(s1.ready(*px1));
  s1.apply(*px1);
  s1.local_read(0);

  const auto my = write_at(s1, 1, dests({1, 2}), &wy);
  const auto py = make_pending(s2, 1, 1, wy, dests({1, 2}), my);
  EXPECT_FALSE(s2.ready(*py)) << "y causally follows x and both are destined to s2";

  const auto px2 = make_pending(s2, 0, 0, wx, dests({1, 2}), mx);
  ASSERT_TRUE(s2.ready(*px2));
  s2.apply(*px2);
  EXPECT_TRUE(s2.ready(*py));
  s2.apply(*py);
}

TEST(OptTrack, NoFalseDependencyWithoutRead) {
  OptTrack s0(0, kN), s1(1, kN), s2(2, kN);
  WriteId wx, wy;
  const auto mx = write_at(s0, 0, dests({1, 2}), &wx);
  const auto px1 = make_pending(s1, 0, 0, wx, dests({1, 2}), mx);
  s1.apply(*px1);  // applied, never read

  const auto my = write_at(s1, 1, dests({1, 2}), &wy);
  const auto py = make_pending(s2, 1, 1, wy, dests({1, 2}), my);
  EXPECT_TRUE(s2.ready(*py));
}

TEST(OptTrack, ApplyPrunesReceiverAndMessageDests) {
  // Receiver stores LastWriteOn with condition (1)+(2) pruning applied.
  OptTrack s0(0, kN), s1(1, kN);
  WriteId wx, wy;
  const auto mx = write_at(s0, 0, dests({0, 1, 3}), &wx);
  const auto my = write_at(s0, 1, dests({1, 2}), &wy);  // piggybacks x's entry

  const auto py = make_pending(s1, 0, 1, wy, dests({1, 2}), my);
  EXPECT_FALSE(s1.ready(*py)) << "x is destined to s1 and precedes y";
  const auto px = make_pending(s1, 0, 0, wx, dests({0, 1, 3}), mx);
  ASSERT_TRUE(s1.ready(*px));
  s1.apply(*px);
  ASSERT_TRUE(s1.ready(*py));
  s1.apply(*py);

  // LastWriteOn⟨var 1⟩ at s1: x's entry pruned by dests(y) ∪ {self} → {3};
  // y's own entry keeps {2} (condition (1) removed the receiver).
  const KsLog* deps = s1.last_write_log(1);
  ASSERT_NE(deps, nullptr);
  ASSERT_NE(deps->find(wx), nullptr);
  EXPECT_EQ(*deps->find(wx), dests({3}));
  ASSERT_NE(deps->find(wy), nullptr);
  EXPECT_EQ(*deps->find(wy), dests({2}));
}

TEST(OptTrack, RemoteReturnMergesIntoLocalLog) {
  OptTrack server(0, kN), reader(4, kN);
  WriteId wx;
  write_at(server, 2, dests({0, 1}), &wx);

  serial::ByteWriter rm;
  server.remote_return_meta(2, rm);
  const serial::Bytes bytes = rm.take();
  serial::ByteReader r(bytes);
  const auto ret = reader.decode_remote_return(r);
  // wx is not destined to site 4, so the return is immediately ready.
  ASSERT_TRUE(reader.return_ready(*ret));
  reader.absorb_remote_return(2, *ret);
  ASSERT_NE(reader.log().find(wx), nullptr);
  // Server pruned itself (condition 1), destination 1 remains.
  EXPECT_EQ(*reader.log().find(wx), dests({1}));
}

TEST(OptTrack, RemoteReturnWaitsForWritesDestinedToReader) {
  OptTrack server(0, kN), reader(1, kN);
  WriteId wx;
  const auto sm = write_at(server, 2, dests({0, 1}), &wx);

  serial::ByteWriter rm;
  server.remote_return_meta(2, rm);
  const serial::Bytes bytes = rm.take();
  serial::ByteReader r(bytes);
  const auto ret = reader.decode_remote_return(r);
  EXPECT_FALSE(reader.return_ready(*ret)) << "wx is destined to the reader, unapplied";

  const auto pending = make_pending(reader, 0, 2, wx, dests({0, 1}), sm);
  reader.apply(*pending);
  EXPECT_TRUE(reader.return_ready(*ret));
  reader.absorb_remote_return(2, *ret);
}

TEST(OptTrack, LastWriteOnStoredPerVariable) {
  OptTrack p(0, kN);
  WriteId w1, w2;
  write_at(p, 0, dests({0, 1}), &w1);
  write_at(p, 1, dests({0, 2}), &w2);
  ASSERT_NE(p.last_write_log(0), nullptr);
  ASSERT_NE(p.last_write_log(1), nullptr);
  EXPECT_NE(p.last_write_log(0)->find(w1), nullptr);
  EXPECT_NE(p.last_write_log(1)->find(w2), nullptr);
  EXPECT_EQ(p.last_write_log(7), nullptr);
}

TEST(OptTrack, LogStaysBoundedUnderManyWrites) {
  // Repeated writes to the same variables with overlapping replica sets
  // must not grow the log: condition (2) + purge keep at most a handful of
  // entries per writer.
  OptTrack p(0, kN);
  WriteId id;
  for (int i = 0; i < 200; ++i) {
    write_at(p, static_cast<VarId>(i % 3), dests({0, 1, 2}), &id);
  }
  EXPECT_LE(p.log().size(), 3u);
}

TEST(OptTrackDeathTest, ApplyWhenNotReadyPanics) {
  OptTrack a(0, kN), b(1, kN);
  const DestSet d = dests({0, 1});
  WriteId w1, w2;
  write_at(a, 0, d, &w1);
  const auto m2 = write_at(a, 0, d, &w2);
  const auto p2 = make_pending(b, 0, 0, w2, d, m2);
  EXPECT_DEATH(b.apply(*p2), "activation predicate");
}

}  // namespace
}  // namespace causim::causal
