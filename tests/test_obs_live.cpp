// Integration tests for the live telemetry layer (obs::live): the
// streaming visibility tracker and time-series sampler attached to real
// cluster runs on both substrates.
//
//  - Determinism: under the DES the sampler ticks on simulated time, so
//    the same seed must produce byte-identical causim.timeseries.v1 JSON.
//  - Offline/online agreement: replaying the recorded trace through a
//    fresh tracker must reproduce the streaming histograms exactly — the
//    two paths are the same fold over the same event stream.
//  - Substrate agreement: the thread transport delivers the same messages
//    the DES does, so matched-visibility counts are equal and no send is
//    ever left uncorrelated; on both substrates the streamed quantiles
//    must sit within one log-bucket of an exact sorted-sample oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/experiment.hpp"
#include "dsm/cluster.hpp"
#include "dsm/thread_cluster.hpp"
#include "obs/live/live_telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "workload/schedule.hpp"

namespace causim {
namespace {

dsm::ClusterConfig config_for(causal::ProtocolKind kind, SiteId n, std::uint64_t seed) {
  dsm::ClusterConfig c;
  c.sites = n;
  c.variables = 12;
  c.replication = causal::requires_full_replication(kind)
                      ? 0
                      : bench_support::partial_replication_factor(n);
  c.protocol = kind;
  c.seed = seed;
  return c;
}

workload::Schedule schedule_for(SiteId n, std::uint64_t seed) {
  workload::WorkloadParams params;
  params.variables = 12;
  params.write_rate = 0.5;
  params.ops_per_site = 60;
  params.seed = seed;
  return workload::generate_schedule(n, params);
}

obs::live::LiveConfig live_config_for(const dsm::ClusterConfig& config) {
  obs::live::LiveConfig live;
  live.sites = config.sites;
  live.variables = config.variables;
  return live;
}

// Streamed quantile vs the exact order statistic: a log-bucketed histogram
// can only err by the width of the bucket holding the rank, so the
// estimate must sit in [x, max(x, lo)·ratio] with ratio =
// 10^(1/buckets_per_decade). Same bound as the test_stats oracle, applied
// here to real visibility latencies.
void expect_quantiles_match_oracle(const obs::live::LiveTelemetry& live,
                                   const char* what) {
  std::vector<double> samples = live.latency_samples();
  ASSERT_FALSE(samples.empty()) << what;
  std::sort(samples.begin(), samples.end());
  const obs::live::LiveConfig defaults;
  const double ratio =
      std::pow(10.0, 1.0 / static_cast<double>(defaults.buckets_per_decade));
  const stats::Histogram h = live.visibility_histogram();
  ASSERT_EQ(h.count(), samples.size()) << what;
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto rank =
        static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples.size())));
    const double exact = samples[std::min(samples.size() - 1, rank == 0 ? 0 : rank - 1)];
    const double streamed = h.quantile(q);
    EXPECT_GE(streamed, exact - 1e-9) << what << " q=" << q;
    EXPECT_LE(streamed, std::max(exact, defaults.latency_lo_us) * ratio + 1e-9)
        << what << " q=" << q << " exact=" << exact;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), samples.back()) << what;
}

// Same seed, same schedule — the DES sampler runs on simulated time, so
// two independent runs must serialize to byte-identical timeseries JSON.
TEST(ObsLiveTimeseries, SameSeedIsByteIdenticalUnderSim) {
  const SiteId n = 5;
  const std::uint64_t seed = 77;
  const auto schedule = schedule_for(n, seed);

  auto run_once = [&](std::string* out, std::size_t* samples) {
    dsm::ClusterConfig config = config_for(causal::ProtocolKind::kOptTrack, n, seed);
    obs::live::LiveConfig live_config = live_config_for(config);
    live_config.sample_interval = 500 * kMillisecond;
    obs::live::LiveTelemetry live(live_config);
    live.begin_run(seed);
    config.live = &live;
    dsm::Cluster cluster(config);
    cluster.execute(schedule);
    *samples = live.samples().size();
    std::ostringstream os;
    live.write_timeseries_json(os);
    *out = os.str();
  };

  std::string a, b;
  std::size_t samples_a = 0, samples_b = 0;
  run_once(&a, &samples_a);
  run_once(&b, &samples_b);
  EXPECT_GT(samples_a, 3u);  // the run is long enough to tick repeatedly
  EXPECT_EQ(samples_a, samples_b);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"schema\":\"causim.timeseries.v1\""), std::string::npos);
  EXPECT_NE(a.find("\"seed\":77"), std::string::npos);
}

TEST(ObsLiveTimeseries, CumulativeCountersAreMonotone) {
  const SiteId n = 4;
  dsm::ClusterConfig config = config_for(causal::ProtocolKind::kOptTrack, n, 5);
  obs::live::LiveConfig live_config = live_config_for(config);
  live_config.sample_interval = 500 * kMillisecond;
  obs::live::LiveTelemetry live(live_config);
  live.begin_run(5);
  config.live = &live;
  dsm::Cluster cluster(config);
  cluster.execute(schedule_for(n, 5));

  const auto& samples = live.samples();
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].ts, samples[i - 1].ts);
    EXPECT_GE(samples[i].ops, samples[i - 1].ops);
    EXPECT_GE(samples[i].sends, samples[i - 1].sends);
    EXPECT_GE(samples[i].applies, samples[i - 1].applies);
  }
  EXPECT_EQ(live.truncated_samples(), 0u);
  // The sampler stops within one interval of quiescence, so the final
  // sample trails the drained totals by at most that window.
  EXPECT_GT(samples.back().ops, 0u);
  EXPECT_LE(samples.back().ops, live.ops());
  EXPECT_LE(samples.back().sends, live.sends());
}

class ObsLiveAllProtocols : public ::testing::TestWithParam<causal::ProtocolKind> {};

// The offline path (replay the recorded trace into a fresh tracker) and
// the streaming path (tracker interposed during the run) are the same
// fold over the same events — histograms and counts must agree exactly.
// This is what keeps protocol orderings consistent between bench.v1's
// streaming quantiles and any later causim-trace analysis of the dump.
TEST_P(ObsLiveAllProtocols, OfflineReplayMatchesStreaming) {
  const auto kind = GetParam();
  const SiteId n = 5;
  dsm::ClusterConfig config = config_for(kind, n, 11);

  obs::live::LiveTelemetry online(live_config_for(config));
  online.begin_run(11);
  obs::RingBufferSink ring;
  config.live = &online;
  config.trace_sink = &ring;  // the live layer interposes and forwards
  dsm::Cluster cluster(config);
  cluster.execute(schedule_for(n, 11));

  ASSERT_GT(online.matched(), 0u) << to_string(kind);
  EXPECT_EQ(online.unmatched(), 0u) << to_string(kind);
  EXPECT_EQ(ring.dropped(), 0u);

  obs::live::LiveTelemetry offline(live_config_for(config));
  offline.begin_run(11);
  offline.set_event_clock(true);  // recorded events carry DES timestamps
  obs::live::replay_events(ring.events(), offline);

  EXPECT_EQ(offline.ops(), online.ops());
  EXPECT_EQ(offline.sends(), online.sends());
  EXPECT_EQ(offline.applies(), online.applies());
  EXPECT_EQ(offline.matched(), online.matched());
  EXPECT_EQ(offline.unmatched(), online.unmatched());

  const auto a = online.visibility_summary();
  const auto b = offline.visibility_summary();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean_us, b.mean_us);
  EXPECT_DOUBLE_EQ(a.max_us, b.max_us);
  EXPECT_DOUBLE_EQ(a.p50_us, b.p50_us);
  EXPECT_DOUBLE_EQ(a.p90_us, b.p90_us);
  EXPECT_DOUBLE_EQ(a.p99_us, b.p99_us);
  EXPECT_DOUBLE_EQ(a.p999_us, b.p999_us);
  for (SiteId origin = 0; origin < n; ++origin) {
    for (SiteId dest = 0; dest < n; ++dest) {
      EXPECT_EQ(online.pair_histogram(origin, dest).count(),
                offline.pair_histogram(origin, dest).count())
          << to_string(kind) << " pair " << origin << "->" << dest;
    }
  }
}

// Both substrates run the same schedule to quiescence, so every SM send
// finds its activation: matched counts agree and nothing is left
// uncorrelated. Latency magnitudes differ (simulated wire delay vs real
// wall time) but on each substrate the streamed quantiles must track the
// exact sorted-sample oracle.
TEST_P(ObsLiveAllProtocols, SimAndThreadSubstratesAgree) {
  const auto kind = GetParam();
  const SiteId n = 5;
  const std::uint64_t seed = 31;
  const auto schedule = schedule_for(n, seed);

  dsm::ClusterConfig sim_config = config_for(kind, n, seed);
  obs::live::LiveConfig live_config = live_config_for(sim_config);
  live_config.keep_latency_samples = true;
  obs::live::LiveTelemetry sim_live(live_config);
  sim_live.begin_run(seed);
  sim_config.live = &sim_live;
  dsm::Cluster sim_cluster(sim_config);
  sim_cluster.execute(schedule);

  dsm::ClusterConfig thread_config = config_for(kind, n, seed);
  obs::live::LiveTelemetry thread_live(live_config);
  thread_live.begin_run(seed);
  thread_config.live = &thread_live;
  dsm::ThreadCluster thread_cluster(thread_config);
  thread_cluster.execute(schedule);

  EXPECT_GT(sim_live.matched(), 0u) << to_string(kind);
  EXPECT_EQ(sim_live.unmatched(), 0u) << to_string(kind);
  EXPECT_EQ(thread_live.unmatched(), 0u) << to_string(kind);
  EXPECT_EQ(sim_live.matched(), thread_live.matched()) << to_string(kind);
  // Visibility correlates every SM send, including warm-up writes that
  // message stats exclude — so matched is a (schedule-determined) superset
  // of the recorded SM count.
  EXPECT_GE(sim_live.matched(),
            sim_cluster.aggregate_message_stats().of(MessageKind::kSM).count);

  expect_quantiles_match_oracle(sim_live, "sim");
  expect_quantiles_match_oracle(thread_live, "thread");
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ObsLiveAllProtocols,
    ::testing::Values(causal::ProtocolKind::kFullTrack, causal::ProtocolKind::kOptTrack,
                      causal::ProtocolKind::kOptTrackCrp, causal::ProtocolKind::kOptP),
    [](const ::testing::TestParamInfo<causal::ProtocolKind>& param_info) {
      std::string name = to_string(param_info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace causim
