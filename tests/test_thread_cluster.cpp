// Integration tests for the real-thread transport path: the same schedules
// must drain, verify causally, and produce the message counts the DES run
// produces (counts are schedule+placement determined; interleavings only
// affect meta-data contents).
#include <gtest/gtest.h>

#include "bench_support/experiment.hpp"
#include "dsm/cluster.hpp"
#include "dsm/thread_cluster.hpp"
#include "workload/schedule.hpp"

namespace causim::dsm {
namespace {

ClusterConfig config_for(causal::ProtocolKind kind, SiteId n, std::uint64_t seed) {
  ClusterConfig c;
  c.sites = n;
  c.variables = 12;
  c.replication = causal::requires_full_replication(kind)
                      ? 0
                      : bench_support::partial_replication_factor(n);
  c.protocol = kind;
  c.seed = seed;
  return c;
}

workload::Schedule schedule_for(SiteId n, std::uint64_t seed) {
  workload::WorkloadParams params;
  params.variables = 12;
  params.write_rate = 0.5;
  params.ops_per_site = 60;
  params.seed = seed;
  return workload::generate_schedule(n, params);
}

class ThreadClusterAllProtocols
    : public ::testing::TestWithParam<causal::ProtocolKind> {};

TEST_P(ThreadClusterAllProtocols, DrainsAndVerifies) {
  const auto kind = GetParam();
  const SiteId n = 5;
  ThreadCluster::Options options;
  options.max_wire_delay_us = 300;  // force real reordering
  ThreadCluster cluster(config_for(kind, n, 21), options);
  cluster.execute(schedule_for(n, 21));
  const auto result = cluster.check();
  EXPECT_TRUE(result.ok()) << to_string(kind) << ": "
                           << (result.violations.empty() ? ""
                                                         : result.violations.front());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ThreadClusterAllProtocols,
    ::testing::Values(causal::ProtocolKind::kFullTrack, causal::ProtocolKind::kOptTrack,
                      causal::ProtocolKind::kOptTrackCrp, causal::ProtocolKind::kOptP),
    [](const ::testing::TestParamInfo<causal::ProtocolKind>& param_info) {
      std::string name = to_string(param_info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(ThreadCluster, MessageCountsMatchDiscreteEventRun) {
  const SiteId n = 6;
  const auto schedule = schedule_for(n, 33);

  Cluster des(config_for(causal::ProtocolKind::kOptTrack, n, 33));
  des.execute(schedule);

  ThreadCluster threads(config_for(causal::ProtocolKind::kOptTrack, n, 33));
  threads.execute(schedule);

  const auto a = des.aggregate_message_stats();
  const auto b = threads.aggregate_message_stats();
  EXPECT_EQ(a.of(MessageKind::kSM).count, b.of(MessageKind::kSM).count);
  EXPECT_EQ(a.of(MessageKind::kFM).count, b.of(MessageKind::kFM).count);
  EXPECT_EQ(a.of(MessageKind::kRM).count, b.of(MessageKind::kRM).count);
  // Payload bytes are schedule-determined too.
  EXPECT_EQ(a.total().payload_bytes, b.total().payload_bytes);
}

TEST(ThreadCluster, ScaledGapsStillComplete) {
  const SiteId n = 3;
  ThreadCluster::Options options;
  options.time_scale = 1e-5;  // 2005 ms max gap → 20 µs max sleep
  ThreadCluster cluster(config_for(causal::ProtocolKind::kOptTrackCrp, n, 8), options);
  cluster.execute(schedule_for(n, 8));
  EXPECT_TRUE(cluster.check().ok());
}

TEST(ThreadCluster, FixedSizeMetaMatchesAcrossTransportsExactly) {
  // Full-Track's piggyback is always the n×n matrix and optP's always the
  // n-vector — interleaving-independent — so DES and thread runs must
  // agree on meta BYTES to the byte, not just on counts.
  for (const auto kind :
       {causal::ProtocolKind::kFullTrack, causal::ProtocolKind::kOptP}) {
    const SiteId n = 5;
    const auto schedule = schedule_for(n, 55);
    Cluster des(config_for(kind, n, 55));
    des.execute(schedule);
    ThreadCluster threads(config_for(kind, n, 55));
    threads.execute(schedule);
    EXPECT_EQ(des.aggregate_message_stats().total().meta_bytes,
              threads.aggregate_message_stats().total().meta_bytes)
        << to_string(kind);
    EXPECT_EQ(des.aggregate_message_stats().total().header_bytes,
              threads.aggregate_message_stats().total().header_bytes)
        << to_string(kind);
  }
}

TEST(ThreadCluster, GuardedFetchStaysFreshUnderRealConcurrency) {
  const SiteId n = 5;
  ClusterConfig config = config_for(causal::ProtocolKind::kOptTrack, n, 44);
  config.causal_fetch = true;
  ThreadCluster::Options options;
  options.max_wire_delay_us = 400;
  ThreadCluster cluster(config, options);
  cluster.execute(schedule_for(n, 44));
  checker::CheckOptions strict;
  strict.strict_read_freshness = true;
  const auto result = cluster.check(strict);
  EXPECT_TRUE(result.ok()) << (result.violations.empty() ? ""
                                                         : result.violations.front());
  EXPECT_EQ(result.stale_reads, 0u);
}

TEST(ThreadCluster, LogInstrumentationAggregates) {
  const SiteId n = 4;
  ThreadCluster cluster(config_for(causal::ProtocolKind::kOptTrack, n, 45));
  cluster.execute(schedule_for(n, 45));
  EXPECT_GT(cluster.aggregate_log_entries().count(), 0u);
  EXPECT_GT(cluster.aggregate_log_bytes().mean(), 0.0);
}

TEST(ThreadCluster, RepeatedRunsAllVerify) {
  // Thread interleavings differ run to run; causal consistency must hold
  // in every one of them.
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    ThreadCluster cluster(config_for(causal::ProtocolKind::kOptTrack, 4, seed));
    cluster.execute(schedule_for(4, seed));
    const auto result = cluster.check();
    ASSERT_TRUE(result.ok()) << "seed " << seed << ": "
                             << (result.violations.empty() ? ""
                                                           : result.violations.front());
  }
}

}  // namespace
}  // namespace causim::dsm
