// Reproducibility: a discrete-event run is a pure function of its
// configuration — identical seeds give bit-identical statistics, different
// seeds give different executions.
#include <gtest/gtest.h>

#include "dsm/cluster.hpp"
#include "workload/schedule.hpp"

namespace causim::dsm {
namespace {

struct Fingerprint {
  std::uint64_t messages;
  std::uint64_t header;
  std::uint64_t meta;
  std::uint64_t payload;
  std::uint64_t events;
  std::size_t history;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run_once(causal::ProtocolKind kind, std::uint64_t seed) {
  ClusterConfig config;
  config.sites = 6;
  config.variables = 15;
  config.replication = causal::requires_full_replication(kind) ? 0 : 2;
  config.protocol = kind;
  config.seed = seed;

  workload::WorkloadParams wl;
  wl.variables = 15;
  wl.write_rate = 0.5;
  wl.ops_per_site = 100;
  wl.seed = seed;

  Cluster cluster(config);
  cluster.execute(workload::generate_schedule(6, wl));
  const auto total = cluster.aggregate_message_stats().total();
  return Fingerprint{total.count,          total.header_bytes, total.meta_bytes,
                     total.payload_bytes,  cluster.simulator().executed(),
                     cluster.history().size()};
}

class Determinism : public ::testing::TestWithParam<causal::ProtocolKind> {};

TEST_P(Determinism, SameSeedSameExecution) {
  EXPECT_EQ(run_once(GetParam(), 42), run_once(GetParam(), 42));
}

TEST_P(Determinism, DifferentSeedDifferentExecution) {
  EXPECT_NE(run_once(GetParam(), 42), run_once(GetParam(), 43));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, Determinism,
    ::testing::Values(causal::ProtocolKind::kFullTrack, causal::ProtocolKind::kOptTrack,
                      causal::ProtocolKind::kOptTrackCrp, causal::ProtocolKind::kOptP,
                      causal::ProtocolKind::kFullTrackHb),
    [](const ::testing::TestParamInfo<causal::ProtocolKind>& param_info) {
      std::string name = to_string(param_info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace causim::dsm
