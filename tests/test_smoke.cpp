// End-to-end smoke test: a small run of every protocol completes, drains,
// and passes the causal checker.
#include <gtest/gtest.h>

#include "bench_support/experiment.hpp"

namespace causim {
namespace {

TEST(Smoke, AllProtocolsSmallRun) {
  using causal::ProtocolKind;
  for (const ProtocolKind kind :
       {ProtocolKind::kFullTrack, ProtocolKind::kOptTrack, ProtocolKind::kOptTrackCrp,
        ProtocolKind::kOptP}) {
    bench_support::ExperimentParams params;
    params.protocol = kind;
    params.sites = 5;
    params.write_rate = 0.5;
    params.replication = causal::requires_full_replication(kind)
                             ? 0
                             : bench_support::partial_replication_factor(5);
    params.variables = 20;
    params.ops_per_site = 60;
    params.seeds = {7};
    params.check = true;
    const auto result = bench_support::run_experiment(params);
    EXPECT_TRUE(result.check_ok) << to_string(kind) << ": "
                                 << (result.violations.empty() ? ""
                                                               : result.violations.front());
    EXPECT_GT(result.stats.total().count, 0u) << to_string(kind);
  }
}

}  // namespace
}  // namespace causim
