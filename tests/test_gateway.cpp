// GatewayCoalescer framing + GatewayMailbox routing (causim::net) and the
// cross-DC causal-conformance matrix.
//
// Three layers of pressure:
//   * framing properties on the pure coalescer: every appended message
//     comes back from try_decode byte-exact in append order, thresholds
//     (count/size/timer/forced) account every flush, and the enroute wrap
//     round-trips;
//   * adversarial frames: every single-byte truncation and every
//     single-byte corruption of a valid mailbox frame either rejects with
//     zero delivered entries or decodes the full message count — a
//     partial mailbox is never delivered;
//   * the conformance matrix: all four protocols over {2, 3} cells with
//     WAN drops underneath the gateway must stay causally consistent and
//     send exactly the per-kind messages of the gateway-off run of the
//     same seed (the mailbox batches the wire, never the protocol), under
//     the DES and under the pooled thread executor.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "dsm/cluster.hpp"
#include "dsm/thread_cluster.hpp"
#include "net/gateway_mailbox.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"
#include "workload/schedule.hpp"

namespace causim {
namespace {

using net::GatewayCoalescer;
using net::GatewayConfig;

GatewayConfig big_thresholds() {
  GatewayConfig config;
  config.enabled = true;
  config.max_messages = 1 << 20;  // nothing trips unless a test asks
  config.max_bytes = 1 << 28;
  return config;
}

serial::Bytes payload_of(std::uint64_t seed, std::size_t len) {
  sim::Pcg32 rng(seed, /*stream=*/7);
  serial::Bytes out(len);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

struct Decoded {
  SiteId from;
  SiteId to;
  serial::Bytes payload;
};

/// try_decode into a vector; returns nullopt on reject (and asserts the
/// callback was never invoked in that case).
std::optional<std::vector<Decoded>> decode_all(const serial::Bytes& frame,
                                               std::uint16_t* oc = nullptr,
                                               std::uint16_t* dc = nullptr) {
  std::vector<Decoded> out;
  std::uint16_t origin = 0;
  std::uint16_t dest = 0;
  const bool ok = GatewayCoalescer::try_decode(
      frame, origin, dest,
      [&](SiteId from, SiteId to, const std::uint8_t* data, std::size_t len) {
        out.push_back(Decoded{from, to, serial::Bytes(data, data + len)});
      });
  if (!ok) {
    EXPECT_TRUE(out.empty()) << "rejected frame delivered " << out.size()
                             << " entries — partial delivery";
    return std::nullopt;
  }
  if (oc != nullptr) *oc = origin;
  if (dc != nullptr) *dc = dest;
  return out;
}

// ---- framing round trips ----

TEST(GatewayCoalescer, RoundTripsMessagesInAppendOrder) {
  GatewayCoalescer box(big_thresholds(), /*origin_cell=*/2, /*dest_cell=*/5);
  std::vector<Decoded> sent;
  for (std::uint64_t i = 0; i < 37; ++i) {
    const auto from = static_cast<SiteId>(i % 7);
    const auto to = static_cast<SiteId>(20 + i % 5);
    serial::Bytes payload = payload_of(i, 1 + (i * 13) % 300);
    sent.push_back(Decoded{from, to, payload});
    ASSERT_FALSE(box.append(from, to, std::move(payload)).has_value());
  }
  const auto frame = box.flush(GatewayCoalescer::Flush::kForced);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->messages, 37u);
  EXPECT_EQ(box.buffered_messages(), 0u);

  std::uint16_t oc = 0;
  std::uint16_t dc = 0;
  const auto decoded = decode_all(frame->bytes, &oc, &dc);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(oc, 2u);
  EXPECT_EQ(dc, 5u);
  ASSERT_EQ(decoded->size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ((*decoded)[i].from, sent[i].from) << "entry " << i;
    EXPECT_EQ((*decoded)[i].to, sent[i].to) << "entry " << i;
    EXPECT_EQ((*decoded)[i].payload, sent[i].payload) << "entry " << i;
  }
}

TEST(GatewayCoalescer, EmptyPayloadAndMixedSizesRoundTrip) {
  GatewayCoalescer box(big_thresholds(), 0, 1);
  const std::size_t sizes[] = {0, 1, 2, 255, 256, 1024, 0, 7};
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    ASSERT_FALSE(
        box.append(static_cast<SiteId>(i), 9, payload_of(i, sizes[i])).has_value());
  }
  const auto frame = box.flush();
  ASSERT_TRUE(frame.has_value());
  const auto decoded = decode_all(frame->bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), std::size(sizes));
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    EXPECT_EQ((*decoded)[i].payload, payload_of(i, sizes[i])) << "entry " << i;
  }
}

TEST(GatewayCoalescer, CountThresholdShipsCompletedFrame) {
  GatewayConfig config = big_thresholds();
  config.max_messages = 4;
  GatewayCoalescer box(config, 0, 1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_FALSE(box.append(1, 2, payload_of(i, 10)).has_value());
  }
  const auto frame = box.append(1, 2, payload_of(3, 10));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->reason, GatewayCoalescer::Flush::kCount);
  EXPECT_EQ(frame->messages, 4u);
  EXPECT_EQ(box.buffered_messages(), 0u);
  EXPECT_EQ(box.flushes(GatewayCoalescer::Flush::kCount), 1u);
  const auto decoded = decode_all(frame->bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 4u);
}

TEST(GatewayCoalescer, SizeThresholdShipsEvenASingleOversizedMessage) {
  GatewayConfig config = big_thresholds();
  config.max_bytes = 64;
  GatewayCoalescer box(config, 0, 1);
  const auto frame = box.append(1, 2, payload_of(1, 500));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->reason, GatewayCoalescer::Flush::kSize);
  EXPECT_EQ(frame->messages, 1u);
  const auto decoded = decode_all(frame->bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0].payload, payload_of(1, 500));
}

TEST(GatewayCoalescer, FlushOnEmptyMailboxIsNullopt) {
  GatewayCoalescer box(big_thresholds(), 0, 1);
  EXPECT_FALSE(box.flush().has_value());
  EXPECT_EQ(box.frames(), 0u);
}

TEST(GatewayCoalescer, EnrouteRoundTrip) {
  const serial::Bytes payload = payload_of(99, 123);
  serial::Bytes copy = payload;
  const serial::Bytes frame =
      GatewayCoalescer::encode_enroute(4242, std::move(copy), nullptr);
  ASSERT_EQ(frame.size(), GatewayCoalescer::kEnrouteHeaderBytes + payload.size());
  EXPECT_EQ(frame[0], GatewayCoalescer::kEnrouteFrame);
  SiteId to = 0;
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
  ASSERT_TRUE(GatewayCoalescer::try_decode_enroute(frame, to, data, len));
  EXPECT_EQ(to, 4242);
  ASSERT_EQ(len, payload.size());
  EXPECT_EQ(serial::Bytes(data, data + len), payload);
}

TEST(GatewayCoalescer, EnrouteRejectsTruncationAndBadTag) {
  serial::Bytes frame =
      GatewayCoalescer::encode_enroute(7, payload_of(1, 16), nullptr);
  SiteId to = 0;
  const std::uint8_t* data = nullptr;
  std::size_t len = 0;
  for (std::size_t cut = 0; cut < GatewayCoalescer::kEnrouteHeaderBytes; ++cut) {
    const serial::Bytes truncated(frame.begin(),
                                  frame.begin() + static_cast<long>(cut));
    EXPECT_FALSE(GatewayCoalescer::try_decode_enroute(truncated, to, data, len))
        << "cut at " << cut;
  }
  frame[0] = GatewayCoalescer::kMailboxFrame;
  EXPECT_FALSE(GatewayCoalescer::try_decode_enroute(frame, to, data, len));
}

// ---- adversarial frames: truncation + single-byte corruption ----

serial::Bytes valid_frame(std::size_t messages) {
  GatewayCoalescer box(big_thresholds(), 1, 3);
  for (std::size_t i = 0; i < messages; ++i) {
    box.append(static_cast<SiteId>(i), static_cast<SiteId>(50 + i),
               payload_of(i, 5 + i * 3));
  }
  auto frame = box.flush();
  EXPECT_TRUE(frame.has_value());
  return std::move(frame->bytes);
}

TEST(GatewayCoalescer, EveryTruncationRejectsWithoutPartialDelivery) {
  const serial::Bytes frame = valid_frame(6);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const serial::Bytes truncated(frame.begin(),
                                  frame.begin() + static_cast<long>(cut));
    // decode_all asserts zero delivered entries on reject.
    EXPECT_FALSE(decode_all(truncated).has_value()) << "cut at " << cut;
  }
  // Appending trailing garbage breaks the exact-boundary rule too.
  serial::Bytes padded = frame;
  padded.push_back(0);
  EXPECT_FALSE(decode_all(padded).has_value());
}

TEST(GatewayCoalescer, SingleByteCorruptionNeverDeliversPartially) {
  const serial::Bytes frame = valid_frame(6);
  const auto baseline = decode_all(frame);
  ASSERT_TRUE(baseline.has_value());
  sim::Pcg32 rng(2026, /*stream=*/11);
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    for (int trial = 0; trial < 4; ++trial) {
      serial::Bytes mutated = frame;
      const auto flip =
          static_cast<std::uint8_t>(1 + rng.uniform_int(0, 254));
      mutated[pos] = static_cast<std::uint8_t>(mutated[pos] ^ flip);
      // Either a clean reject (zero entries, asserted inside decode_all)
      // or a full decode: corrupted routing/payload bytes that keep the
      // structure valid must still deliver every entry.
      const auto decoded = decode_all(mutated);
      if (decoded.has_value()) {
        EXPECT_EQ(decoded->size(), baseline->size())
            << "byte " << pos << " flip " << static_cast<int>(flip);
      }
    }
  }
}

// ---- conformance matrix: gateway on vs off, DES ----

constexpr std::array<causal::ProtocolKind, 4> kProtocols = {
    causal::ProtocolKind::kFullTrack, causal::ProtocolKind::kOptTrack,
    causal::ProtocolKind::kOptTrackCrp, causal::ProtocolKind::kOptP};

topo::Topology geo_topology(SiteId sites, std::size_t cells, double wan_drop) {
  topo::LinkProfile intra;
  topo::LinkProfile inter;
  inter.latency_lo = inter.latency_hi = 40 * kMillisecond;
  inter.faults.drop_rate = wan_drop;
  return topo::Topology::blocks(sites, cells, intra, inter);
}

workload::Schedule schedule_for(SiteId n, std::uint64_t seed) {
  workload::WorkloadParams wl;
  wl.variables = 12;
  wl.write_rate = 0.5;
  wl.ops_per_site = 30;
  wl.seed = seed;
  return workload::generate_schedule(n, wl);
}

struct Outcome {
  std::array<std::uint64_t, kAllMessageKinds.size()> counts{};
  bool causal_ok = false;
  std::uint64_t mailbox_frames = 0;
  std::uint64_t mailbox_messages = 0;
  std::uint64_t enroute = 0;
  std::uint64_t malformed = 0;
};

Outcome run_geo(causal::ProtocolKind protocol, std::size_t cells,
                bool gateway_on, double wan_drop, std::uint64_t seed) {
  dsm::ClusterConfig config;
  config.sites = 6;
  config.variables = 12;
  config.replication = causal::requires_full_replication(protocol) ? 0 : 2;
  config.protocol = protocol;
  config.seed = seed;
  config.record_history = true;
  config.topology = geo_topology(config.sites, cells, wan_drop);
  config.gateway.enabled = gateway_on;
  config.gateway.max_messages = 4;
  config.gateway.max_delay = 5 * kMillisecond;
  dsm::Cluster cluster(config);
  cluster.execute(schedule_for(config.sites, seed));

  Outcome outcome;
  const stats::MessageStats stats = cluster.aggregate_message_stats();
  for (const MessageKind kind : kAllMessageKinds) {
    outcome.counts[static_cast<std::size_t>(kind)] = stats.of(kind).count;
  }
  outcome.causal_ok = cluster.check().ok();
  const net::GatewayMailbox* gw = cluster.stack().gateway();
  EXPECT_NE(gw, nullptr);
  if (gw != nullptr) {
    EXPECT_TRUE(gw->quiescent());
    outcome.mailbox_frames = gw->mailbox_frames();
    outcome.mailbox_messages = gw->mailbox_messages();
    outcome.enroute = gw->enroute_messages();
    outcome.malformed = gw->malformed();
  }
  return outcome;
}

class GatewayConformance
    : public ::testing::TestWithParam<causal::ProtocolKind> {};

TEST_P(GatewayConformance, MatrixStaysCausalWithUnchangedCounts) {
  const causal::ProtocolKind protocol = GetParam();
  std::uint64_t total_frames = 0;
  std::uint64_t total_enroute = 0;
  for (const std::size_t cells : {std::size_t{2}, std::size_t{3}}) {
    for (const double wan_drop : {0.0, 0.2}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const Outcome off = run_geo(protocol, cells, false, wan_drop, seed);
        const Outcome on = run_geo(protocol, cells, true, wan_drop, seed);
        const std::string ctx = std::string(to_string(protocol)) + " cells=" +
                                std::to_string(cells) + " drop=" +
                                std::to_string(wan_drop) + " seed=" +
                                std::to_string(seed);
        EXPECT_TRUE(off.causal_ok) << ctx << ": violation with gateway off";
        EXPECT_TRUE(on.causal_ok) << ctx << ": violation with gateway on";
        EXPECT_EQ(on.malformed, 0u) << ctx;
        EXPECT_EQ(off.malformed, 0u) << ctx;
        for (const MessageKind kind : kAllMessageKinds) {
          EXPECT_EQ(on.counts[static_cast<std::size_t>(kind)],
                    off.counts[static_cast<std::size_t>(kind)])
              << ctx << ": " << to_string(kind)
              << " count changed — the mailbox must batch the wire, not the"
                 " protocol";
        }
        EXPECT_EQ(off.mailbox_frames, 0u) << ctx;
        total_frames += on.mailbox_frames;
        total_enroute += on.enroute;
      }
    }
  }
  // The matrix is vacuous if no mailbox ever shipped or no sender ever
  // needed the enroute hop.
  EXPECT_GT(total_frames, 0u);
  EXPECT_GT(total_enroute, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, GatewayConformance,
    ::testing::Values(causal::ProtocolKind::kFullTrack,
                      causal::ProtocolKind::kOptTrack,
                      causal::ProtocolKind::kOptTrackCrp,
                      causal::ProtocolKind::kOptP),
    [](const ::testing::TestParamInfo<causal::ProtocolKind>& param_info) {
      std::string name = to_string(param_info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---- the pooled thread lane drains the gateway under real concurrency ----

TEST(GatewayThreads, PooledExecutorDrainsGatewayAndStaysCausal) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    dsm::ClusterConfig config;
    config.sites = 8;
    config.variables = 12;
    config.replication = 3;
    config.protocol = causal::ProtocolKind::kOptTrack;
    config.seed = seed;
    config.record_history = true;
    config.executor = engine::ExecutorKind::kPooled;
    config.workers = 3;
    config.topology = geo_topology(config.sites, 2, 0.0);
    config.gateway.enabled = true;
    config.gateway.max_messages = 4;
    config.gateway.max_delay = 2 * kMillisecond;  // real time on this path
    dsm::ThreadCluster cluster(config);
    cluster.execute(schedule_for(config.sites, seed));

    const auto result = cluster.check();
    ASSERT_TRUE(result.ok())
        << "seed " << seed << ": "
        << (result.violations.empty() ? "" : result.violations.front());
    const net::GatewayMailbox* gw = cluster.stack().gateway();
    ASSERT_NE(gw, nullptr);
    EXPECT_TRUE(gw->quiescent());
    EXPECT_EQ(gw->malformed(), 0u);
    EXPECT_GT(gw->mailbox_frames(), 0u);
  }
}

// Batching below the gateway: the enroute hop and the mailbox frames ride
// the 0xB4 coalescing layer without confusing either framing.
TEST(GatewayThreads, GatewayStacksOnBatchingTransport) {
  dsm::ClusterConfig config;
  config.sites = 6;
  config.variables = 12;
  config.replication = 2;
  config.protocol = causal::ProtocolKind::kOptTrack;
  config.seed = 9;
  config.record_history = true;
  config.executor = engine::ExecutorKind::kPooled;
  config.workers = 2;
  config.batch.enabled = true;
  config.batch.max_messages = 8;
  config.batch.max_delay = 2 * kMillisecond;
  config.topology = geo_topology(config.sites, 2, 0.0);
  config.gateway.enabled = true;
  config.gateway.max_messages = 4;
  config.gateway.max_delay = 2 * kMillisecond;
  dsm::ThreadCluster cluster(config);
  cluster.execute(schedule_for(config.sites, 9));
  ASSERT_TRUE(cluster.check().ok());
  ASSERT_NE(cluster.stack().gateway(), nullptr);
  ASSERT_NE(cluster.stack().batching(), nullptr);
  EXPECT_EQ(cluster.stack().gateway()->malformed(), 0u);
  EXPECT_GT(cluster.stack().gateway()->mailbox_frames(), 0u);
  EXPECT_GT(cluster.stack().batching()->frames_sent(), 0u);
}

}  // namespace
}  // namespace causim
