// engine layer tests: EngineConfig validation (one assertion per
// rejection), NodeStack assembly through both cluster substrates, and the
// Sim-vs-Thread equivalence the refactor must preserve — both substrates
// now assemble the identical engine::NodeStack, so everything
// interleaving-independent must agree exactly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench_support/experiment.hpp"
#include "dsm/cluster.hpp"
#include "dsm/thread_cluster.hpp"
#include "engine/config.hpp"
#include "sim/latency.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"
#include "workload/schedule.hpp"

namespace causim::engine {
namespace {

bool mentions(const std::vector<std::string>& errors, const std::string& needle) {
  for (const auto& e : errors) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(EngineConfigValidation, AcceptsDefaults) {
  EXPECT_TRUE(validate(EngineConfig{}).empty());
}

TEST(EngineConfigValidation, RejectsZeroSites) {
  EngineConfig c;
  c.sites = 0;
  EXPECT_TRUE(mentions(validate(c), "sites must be >= 1"));
}

TEST(EngineConfigValidation, RejectsZeroVariables) {
  EngineConfig c;
  c.variables = 0;
  EXPECT_TRUE(mentions(validate(c), "variables must be >= 1"));
}

TEST(EngineConfigValidation, RejectsReplicationAboveSites) {
  EngineConfig c;
  c.sites = 4;
  c.replication = 5;
  EXPECT_TRUE(mentions(validate(c), "exceeds sites"));
}

TEST(EngineConfigValidation, RejectsPartialReplicationForFullOnlyProtocols) {
  EngineConfig c;
  c.sites = 6;
  c.replication = 2;
  c.protocol = causal::ProtocolKind::kOptP;
  EXPECT_TRUE(mentions(validate(c), "requires full replication"));
  c.protocol = causal::ProtocolKind::kOptTrackCrp;
  EXPECT_TRUE(mentions(validate(c), "requires full replication"));
  // Opt-Track is the partial-replication algorithm; same p is fine.
  c.protocol = causal::ProtocolKind::kOptTrack;
  EXPECT_TRUE(validate(c).empty());
}

TEST(EngineConfigValidation, RejectsInvertedLatencyBounds) {
  EngineConfig c;
  c.latency_lo = 200 * kMillisecond;
  c.latency_hi = 100 * kMillisecond;
  EXPECT_TRUE(mentions(validate(c), "latency_lo"));
}

TEST(EngineConfigValidation, RejectsMalformedFetchDistances) {
  EngineConfig c;
  c.sites = 3;
  c.fetch_distances = {{0, 1, 2}, {1, 0, 2}};  // 2 rows for 3 sites
  EXPECT_TRUE(mentions(validate(c), "3x3"));
  c.fetch_distances = {{0, 1}, {1, 0}, {2, 2}};  // square count, short rows
  EXPECT_TRUE(mentions(validate(c), "3x3"));
}

TEST(EngineConfigValidation, RejectsNearestFetchWithoutDistances) {
  EngineConfig c;
  c.fetch_policy = dsm::FetchPolicy::kNearest;
  EXPECT_TRUE(mentions(validate(c), "kNearest needs fetch_distances"));
}

TEST(EngineConfigValidation, RejectsReliableRtoMisconfiguration) {
  EngineConfig c;
  c.reliable_channel = true;
  c.reliable_config.rto_initial = 0;
  EXPECT_TRUE(mentions(validate(c), "rto_initial must be positive"));

  c.reliable_config.rto_initial = 2 * kSecond;
  c.reliable_config.rto_max = 1 * kSecond;
  EXPECT_TRUE(mentions(validate(c), "rto_max"));

  c.reliable_config = {};
  c.reliable_config.rto_backoff = 0.5;
  EXPECT_TRUE(mentions(validate(c), "rto_backoff"));
}

TEST(EngineConfigValidation, RejectsAdaptiveRtoMisconfiguration) {
  EngineConfig c;
  c.reliable_channel = true;
  c.reliable_config.adaptive_rto = true;
  c.reliable_config.rto_min = 0;
  EXPECT_TRUE(mentions(validate(c), "rto_min must be positive"));

  c.reliable_config = {};
  c.reliable_config.adaptive_rto = true;
  c.reliable_config.rto_min = 2 * kSecond;
  c.reliable_config.rto_max = 1 * kSecond;
  c.reliable_config.rto_initial = 500 * kMillisecond;
  EXPECT_TRUE(mentions(validate(c), "rto_min"));

  // Without adaptive_rto the estimator clamps are dormant and irrelevant.
  c.reliable_config = {};
  c.reliable_config.rto_min = 0;
  EXPECT_TRUE(validate(c).empty());
}

TEST(EngineConfigValidation, IgnoresReliableConfigWhileLayerIsDown) {
  // Without a fault plan or the forced reliable channel the sublayer is
  // never built, so its knobs are irrelevant and must not reject.
  EngineConfig c;
  c.reliable_config.rto_backoff = 0.5;
  EXPECT_TRUE(validate(c).empty());
}

TEST(EngineConfigValidation, RejectsWorkersWithPerSiteExecutor) {
  EngineConfig c;
  c.workers = 4;  // executor stays the kPerSite default
  const auto errors = validate(c);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_TRUE(mentions(errors, "executor"));

  c.executor = ExecutorKind::kPooled;
  EXPECT_TRUE(validate(c).empty());
}

TEST(EngineConfigValidation, RejectsDegenerateBatchThresholds) {
  EngineConfig c;
  c.batch.enabled = true;
  EXPECT_TRUE(validate(c).empty()) << "defaults must validate";

  c.batch.max_messages = 0;
  EXPECT_TRUE(mentions(validate(c), "batch.max_messages"));
  c.batch.max_messages = 16;

  c.batch.max_bytes = 4;  // below the frame header + one length prefix
  EXPECT_TRUE(mentions(validate(c), "batch.max_bytes"));
  c.batch.max_bytes = 16 * 1024;

  c.batch.max_delay = 0;
  EXPECT_TRUE(mentions(validate(c), "batch.max_delay"));
  c.batch.max_delay = kMillisecond;
  EXPECT_TRUE(validate(c).empty());

  // Disabled batching skips the threshold checks entirely.
  c.batch.enabled = false;
  c.batch.max_messages = 0;
  EXPECT_TRUE(validate(c).empty());
}

TEST(EngineConfigValidation, CollectsEveryViolation) {
  EngineConfig c;
  c.sites = 2;
  c.variables = 0;
  c.replication = 3;
  c.latency_lo = 10;
  c.latency_hi = 5;
  EXPECT_EQ(validate(c).size(), 3u);
}

// ---------------------------------------------------------------------------

dsm::ClusterConfig config_for(causal::ProtocolKind kind, SiteId n,
                              std::uint64_t seed) {
  dsm::ClusterConfig c;
  c.sites = n;
  c.variables = 12;
  c.replication = causal::requires_full_replication(kind)
                      ? 0
                      : bench_support::partial_replication_factor(n);
  c.protocol = kind;
  c.seed = seed;
  return c;
}

workload::Schedule schedule_for(SiteId n, std::uint64_t seed) {
  workload::WorkloadParams params;
  params.variables = 12;
  params.write_rate = 0.5;
  params.ops_per_site = 60;
  params.seed = seed;
  return workload::generate_schedule(n, params);
}

TEST(NodeStackAssembly, BareConfigBuildsNoFaultStack) {
  dsm::Cluster cluster(config_for(causal::ProtocolKind::kOptTrack, 4, 7));
  EXPECT_EQ(cluster.injector(), nullptr);
  EXPECT_EQ(cluster.reliable(), nullptr);
  // Without the fault stack the sites talk to the wire directly.
  EXPECT_EQ(&cluster.edge(), &cluster.transport());
}

TEST(NodeStackAssembly, ReliableChannelRaisesTheEdge) {
  auto config = config_for(causal::ProtocolKind::kOptTrack, 4, 7);
  config.reliable_channel = true;
  dsm::Cluster cluster(config);
  EXPECT_EQ(cluster.injector(), nullptr);
  ASSERT_NE(cluster.reliable(), nullptr);
  EXPECT_NE(&cluster.edge(), &cluster.transport());
}

TEST(NodeStackAssembly, FaultPlanImpliesInjectorAndReliability) {
  auto config = config_for(causal::ProtocolKind::kOptTrack, 4, 7);
  config.fault_plan.default_faults.drop_rate = 0.05;
  dsm::Cluster cluster(config);
  EXPECT_NE(cluster.injector(), nullptr);
  EXPECT_NE(cluster.reliable(), nullptr);
}

TEST(NodeStackAssembly, FramePoolRecyclesInSteadyState) {
  dsm::Cluster cluster(config_for(causal::ProtocolKind::kOptTrack, 5, 9));
  cluster.execute(schedule_for(5, 9));
  // Every message encodes into a pooled frame and every consumed frame is
  // released back, so after warm-up nearly all acquisitions are reuses.
  const auto& pool = cluster.stack().buffer_pool();
  EXPECT_GT(pool.reuses(), 0u);
  EXPECT_GT(pool.reuses(), pool.misses());
}

TEST(NodeStackAssembly, ThreadClusterSharesTheSameAssembly) {
  auto config = config_for(causal::ProtocolKind::kOptTrack, 4, 11);
  config.reliable_channel = true;
  dsm::ThreadCluster cluster(config);
  ASSERT_NE(cluster.reliable(), nullptr);
  cluster.execute(schedule_for(4, 11));
  EXPECT_TRUE(cluster.check().ok());
  EXPECT_GT(cluster.stack().buffer_pool().reuses(), 0u);
}

// ---------------------------------------------------------------------------

topo::Topology block_topology(SiteId sites, std::size_t cells) {
  topo::LinkProfile intra;
  topo::LinkProfile inter;
  inter.latency_lo = 40 * kMillisecond;
  inter.latency_hi = 45 * kMillisecond;
  return topo::Topology::blocks(sites, cells, intra, inter);
}

TEST(EngineConfigValidation, RejectsGatewayWithoutMultiCellTopology) {
  EngineConfig c;
  c.gateway.enabled = true;
  EXPECT_TRUE(mentions(validate(c), "requires a multi-cell topology"));
  // A one-cell topology is still all-LAN: nothing to coalesce.
  c.topology = block_topology(c.sites, 1);
  EXPECT_TRUE(mentions(validate(c), "requires a multi-cell topology"));
  c.topology = block_topology(c.sites, 2);
  EXPECT_TRUE(validate(c).empty());
}

TEST(EngineConfigValidation, RejectsTopologyPlusCustomLatencyModel) {
  EngineConfig c;
  c.topology = block_topology(c.sites, 2);
  c.latency_model = std::make_shared<sim::UniformLatency>(1000, 2000);
  EXPECT_TRUE(mentions(validate(c), "mutually exclusive"));
}

TEST(EngineConfigValidation, RejectsCellsThatDoNotPartitionTheSites) {
  EngineConfig c;
  c.sites = 4;
  c.topology.cells = {topo::Cell{"dc0", {0, 1}, 0},
                      topo::Cell{"dc1", {2}, 2}};  // site 3 unowned
  EXPECT_TRUE(mentions(validate(c), "belongs to no cell"));

  c.topology.cells = {topo::Cell{"dc0", {0, 1, 2}, 0},
                      topo::Cell{"dc1", {2, 3}, 2}};  // site 2 twice
  EXPECT_TRUE(mentions(validate(c), "cells must be disjoint"));
}

TEST(EngineConfigValidation, RejectsDegenerateGatewayThresholds) {
  EngineConfig c;
  c.topology = block_topology(c.sites, 2);
  c.gateway.enabled = true;
  c.gateway.max_messages = 0;
  EXPECT_TRUE(mentions(validate(c), "max_messages must be >= 1"));

  c.gateway.max_messages = 16;
  c.gateway.max_delay = 0;
  EXPECT_TRUE(mentions(validate(c), "max_delay must be >= 1us"));
}

TEST(EngineConfigValidation, RejectsBadTopologyProfiles) {
  EngineConfig c;
  c.topology = block_topology(c.sites, 2);
  c.topology.inter.latency_lo = 10 * kMillisecond;
  c.topology.inter.latency_hi = 1 * kMillisecond;
  EXPECT_TRUE(mentions(validate(c), "swap the bounds"));

  c = EngineConfig{};
  c.topology = block_topology(c.sites, 2);
  c.topology.intra.faults.drop_rate = 1.5;
  EXPECT_TRUE(mentions(validate(c), "fault rates must be in [0, 1]"));
}

TEST(NodeStackAssembly, GatewayLayerToppedOnlyOnMultiCellTopologies) {
  auto config = config_for(causal::ProtocolKind::kOptTrack, 6, 7);
  EXPECT_EQ(dsm::Cluster(config).stack().gateway(), nullptr);

  // A multi-cell topology always raises the layer; with coalescing off it
  // is a counting pass-through (LAN/WAN accounting, no mailbox frames).
  config.topology = block_topology(6, 2);
  dsm::Cluster passthrough(config);
  ASSERT_NE(passthrough.stack().gateway(), nullptr);
  EXPECT_FALSE(passthrough.stack().gateway()->coalescing());
  passthrough.execute(schedule_for(6, 7));
  EXPECT_TRUE(passthrough.check().ok());
  EXPECT_EQ(passthrough.stack().gateway()->mailbox_frames(), 0u);
  EXPECT_GT(passthrough.stack().gateway()->wan_messages(), 0u);

  config.gateway.enabled = true;
  dsm::Cluster with(config);
  ASSERT_NE(with.stack().gateway(), nullptr);
  EXPECT_TRUE(with.stack().gateway()->coalescing());
  with.execute(schedule_for(6, 7));
  EXPECT_TRUE(with.check().ok());
  EXPECT_GT(with.stack().gateway()->mailbox_frames(), 0u);
}

TEST(NodeStackAssembly, TopologyFaultProfilesRaiseTheFaultStack) {
  auto config = config_for(causal::ProtocolKind::kOptTrack, 6, 7);
  config.topology = block_topology(6, 2);
  config.topology.inter.faults.drop_rate = 0.1;
  dsm::Cluster cluster(config);
  EXPECT_NE(cluster.injector(), nullptr);
  EXPECT_NE(cluster.reliable(), nullptr);
}

// ---------------------------------------------------------------------------

struct TrafficFingerprint {
  std::uint64_t messages;
  std::uint64_t header;
  std::uint64_t meta;
  std::uint64_t payload;
  std::uint64_t events;
  std::size_t history;

  bool operator==(const TrafficFingerprint&) const = default;
};

TrafficFingerprint run_fingerprint(dsm::ClusterConfig config) {
  dsm::Cluster cluster(config);
  cluster.execute(schedule_for(config.sites, config.seed));
  const auto total = cluster.aggregate_message_stats().total();
  return TrafficFingerprint{total.count,
                            total.header_bytes,
                            total.meta_bytes,
                            total.payload_bytes,
                            cluster.simulator().executed(),
                            cluster.history().size()};
}

class TopologyEquivalence
    : public ::testing::TestWithParam<causal::ProtocolKind> {};

TEST_P(TopologyEquivalence, SingleCellTopologyIsByteIdenticalToFlatConfig) {
  // A one-cell topology routes every channel through the intra profile, so
  // ScopedLatency degenerates to one UniformLatency making the identical
  // RNG draws, no gateway layer is built, and the run must reproduce the
  // flat config exactly — the refactor's backward-compatibility crux.
  const auto flat = config_for(GetParam(), 6, 29);

  auto topo_config = flat;
  topo::LinkProfile intra;
  intra.latency_lo = flat.latency_lo;
  intra.latency_hi = flat.latency_hi;
  topo_config.topology = topo::Topology::blocks(6, 1, intra, intra);
  ASSERT_TRUE(validate(topo_config).empty());

  EXPECT_EQ(run_fingerprint(flat), run_fingerprint(topo_config));
}

TEST_P(TopologyEquivalence, MultiCellGatewayPreservesPerKindMessageCounts) {
  // Latency and coalescing shape timing, never the protocol traffic: the
  // per-kind message counts are schedule/placement determined, so a
  // two-cell gateway run must send exactly what the flat run sends.
  const auto flat = config_for(GetParam(), 6, 31);

  auto geo = flat;
  geo.topology = block_topology(6, 2);
  geo.gateway.enabled = true;
  ASSERT_TRUE(validate(geo).empty());

  dsm::Cluster flat_cluster(flat);
  flat_cluster.execute(schedule_for(6, 31));
  dsm::Cluster geo_cluster(geo);
  geo_cluster.execute(schedule_for(6, 31));

  EXPECT_TRUE(geo_cluster.check().ok());
  for (const MessageKind kind : kAllMessageKinds) {
    EXPECT_EQ(flat_cluster.aggregate_message_stats().of(kind).count,
              geo_cluster.aggregate_message_stats().of(kind).count)
        << causim::to_string(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, TopologyEquivalence,
    ::testing::Values(causal::ProtocolKind::kFullTrack,
                      causal::ProtocolKind::kOptTrack,
                      causal::ProtocolKind::kOptTrackCrp,
                      causal::ProtocolKind::kOptP),
    [](const ::testing::TestParamInfo<causal::ProtocolKind>& param_info) {
      std::string name = to_string(param_info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------

class SimThreadEquivalence
    : public ::testing::TestWithParam<causal::ProtocolKind> {};

TEST_P(SimThreadEquivalence, ProtocolTrafficMatchesAcrossSubstrates) {
  // Both substrates assemble the identical engine::NodeStack and play the
  // same schedule through engine::ScheduleDriver, so per-kind message
  // counts, header bytes and payload bytes — all schedule+placement
  // determined — must match exactly for every protocol. Meta BYTES are
  // only interleaving-independent for the fixed-size clocks (Full-Track's
  // n×n matrix, optP's n-vector); Opt-Track and CRP piggyback logs whose
  // size depends on delivery order, so those are asserted separately in
  // the fixed-size case below.
  const auto kind = GetParam();
  const SiteId n = 6;
  const std::uint64_t seed = 73;
  const auto schedule = schedule_for(n, seed);

  dsm::Cluster des(config_for(kind, n, seed));
  des.execute(schedule);
  dsm::ThreadCluster threads(config_for(kind, n, seed));
  threads.execute(schedule);

  const auto a = des.aggregate_message_stats();
  const auto b = threads.aggregate_message_stats();
  for (const MessageKind mk : kAllMessageKinds) {
    EXPECT_EQ(a.of(mk).count, b.of(mk).count) << to_string(kind);
    EXPECT_EQ(a.of(mk).header_bytes, b.of(mk).header_bytes) << to_string(kind);
    EXPECT_EQ(a.of(mk).payload_bytes, b.of(mk).payload_bytes) << to_string(kind);
  }
  if (kind == causal::ProtocolKind::kFullTrack ||
      kind == causal::ProtocolKind::kOptP) {
    EXPECT_EQ(a.total().meta_bytes, b.total().meta_bytes) << to_string(kind);
  }
  EXPECT_TRUE(threads.check().ok()) << to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, SimThreadEquivalence,
    ::testing::Values(causal::ProtocolKind::kFullTrack,
                      causal::ProtocolKind::kOptTrack,
                      causal::ProtocolKind::kOptTrackCrp,
                      causal::ProtocolKind::kOptP),
    [](const ::testing::TestParamInfo<causal::ProtocolKind>& param_info) {
      std::string name = to_string(param_info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------

/// Single-writer schedule: site s is the only writer of the variables
/// congruent to s (mod n). Causal delivery then totally orders each
/// variable's writes by its owner's program order, so the FINAL STORE
/// STATE — not just the traffic — is interleaving-independent and must
/// match across executors exactly.
workload::Schedule single_writer_schedule(SiteId n, VarId variables,
                                          std::size_t ops, std::uint64_t seed) {
  sim::Pcg32 rng(seed);
  workload::Schedule schedule;
  schedule.per_site.resize(n);
  const VarId owned = variables / n;
  for (SiteId s = 0; s < n; ++s) {
    SimTime at = 0;
    for (std::size_t k = 0; k < ops; ++k) {
      workload::Op op;
      at += static_cast<SimTime>(rng.uniform_int(1, 20)) * kMillisecond;
      op.at = at;
      if (k % 2 == 0) {
        op.kind = workload::Op::Kind::kWrite;
        op.var = static_cast<VarId>(
            s + n * static_cast<VarId>(rng.uniform_int(0, owned - 1)));
      } else {
        op.kind = workload::Op::Kind::kRead;
        op.var = static_cast<VarId>(rng.uniform_int(0, variables - 1));
      }
      schedule.per_site[s].push_back(op);
    }
  }
  return schedule;
}

/// The pooled executor against the per-site ThreadExecutor, across every
/// protocol and the worker-count regimes that exercise distinct pool
/// shapes: W=1 (fully serialized pool), W=0 (hardware concurrency) and
/// W>n (more workers than sites — some never find work).
class PooledExecutorEquivalence
    : public ::testing::TestWithParam<
          std::tuple<causal::ProtocolKind, unsigned>> {};

TEST_P(PooledExecutorEquivalence, MatchesPerSiteExecutor) {
  const auto [kind, workers] = GetParam();
  const SiteId n = 6;
  const VarId variables = 12;
  const std::uint64_t seed = 41;
  const auto schedule = single_writer_schedule(n, variables, 60, seed);

  auto config = config_for(kind, n, seed);
  dsm::ThreadCluster per_site(config);
  per_site.execute(schedule);

  config.executor = ExecutorKind::kPooled;
  config.workers = workers;
  dsm::ThreadCluster pooled(config);
  pooled.execute(schedule);

  // Per-kind counts and header/payload bytes are schedule+placement
  // determined; meta bytes only for the fixed-size clocks (the log-carrying
  // protocols piggyback interleaving-dependent bytes).
  const auto a = per_site.aggregate_message_stats();
  const auto b = pooled.aggregate_message_stats();
  for (const MessageKind mk : kAllMessageKinds) {
    EXPECT_EQ(a.of(mk).count, b.of(mk).count) << to_string(kind);
    EXPECT_EQ(a.of(mk).header_bytes, b.of(mk).header_bytes) << to_string(kind);
    EXPECT_EQ(a.of(mk).payload_bytes, b.of(mk).payload_bytes) << to_string(kind);
  }
  if (kind == causal::ProtocolKind::kFullTrack ||
      kind == causal::ProtocolKind::kOptP) {
    EXPECT_EQ(a.total().meta_bytes, b.total().meta_bytes) << to_string(kind);
  }

  // Single-writer final stores must agree replica by replica.
  for (VarId v = 0; v < variables; ++v) {
    for (SiteId s = 0; s < n; ++s) {
      if (!per_site.placement().replicated_at(v, s)) continue;
      const auto [value_a, write_a] = per_site.site(s).local_value(v);
      const auto [value_b, write_b] = pooled.site(s).local_value(v);
      EXPECT_EQ(value_a.id, value_b.id) << "var " << v << " at site " << s;
      EXPECT_EQ(write_a, write_b) << "var " << v << " at site " << s;
    }
  }
  EXPECT_TRUE(pooled.check().ok()) << to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsByWorkers, PooledExecutorEquivalence,
    ::testing::Combine(::testing::Values(causal::ProtocolKind::kFullTrack,
                                         causal::ProtocolKind::kOptTrack,
                                         causal::ProtocolKind::kOptTrackCrp,
                                         causal::ProtocolKind::kOptP),
                       ::testing::Values(1u, 0u /* hardware */, 9u /* > n */)),
    [](const ::testing::TestParamInfo<std::tuple<causal::ProtocolKind, unsigned>>&
           param_info) {
      std::string name = to_string(std::get<0>(param_info.param));
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      const unsigned w = std::get<1>(param_info.param);
      name += w == 0 ? "_Whw" : "_W" + std::to_string(w);
      return name;
    });

}  // namespace
}  // namespace causim::engine
