// Tests for causim::obs::analysis — the JSON document model, the trace
// reader, the LogSampler, and the analysis engine's headline guarantees:
// a handcrafted schedule yields an exact activation latency, the report is
// a pure function of (schedule, seed), and a trace that round-trips
// through the Chrome JSON produces a byte-identical report.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dsm/cluster.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/analysis/trace_reader.hpp"
#include "obs/perfetto_export.hpp"
#include "obs/trace_sink.hpp"
#include "sim/latency.hpp"
#include "workload/schedule.hpp"

namespace causim::obs::analysis {
namespace {

// ---- Json document model ----

TEST(Json, ParsesScalarsContainersAndEscapes) {
  std::string error;
  const Json doc = Json::parse(
      R"({"a\u0041": [1, -2.5, true, null, "x\n\"\\"], "empty": {}})", &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_TRUE(doc.is_object());
  const Json& arr = doc.at("aA");
  ASSERT_TRUE(arr.is_array());
  ASSERT_EQ(arr.size(), 5u);
  EXPECT_DOUBLE_EQ(arr.at(0).number(), 1.0);
  EXPECT_DOUBLE_EQ(arr.at(1).number(), -2.5);
  EXPECT_TRUE(arr.at(2).boolean());
  EXPECT_TRUE(arr.at(3).is_null());
  EXPECT_EQ(arr.at(4).str(), "x\n\"\\");
  EXPECT_TRUE(doc.at("empty").is_object());
  EXPECT_EQ(doc.at("empty").size(), 0u);
  // Absent lookups stay total and return the shared null.
  EXPECT_TRUE(doc.at("missing").is_null());
  EXPECT_TRUE(arr.at(99).is_null());
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"\\q\""}) {
    std::string error;
    const Json doc = Json::parse(bad, &error);
    EXPECT_FALSE(error.empty()) << "accepted: " << bad;
    EXPECT_TRUE(doc.is_null()) << "non-null for: " << bad;
  }
}

TEST(Json, DumpIsKeySortedAndDeterministic) {
  std::string error;
  const Json a = Json::parse(R"({"b": 1, "a": {"d": 2, "c": 3}})", &error);
  ASSERT_TRUE(error.empty()) << error;
  const Json b = Json::parse(R"({"a": {"c": 3, "d": 2}, "b": 1})", &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.dump(), b.dump());
  // Dump re-parses to an equal document.
  EXPECT_EQ(Json::parse(a.dump()), a);
}

TEST(Json, EscapeHandlesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t\x01"), "a\\\"b\\\\c\\n\\t\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

// ---- handcrafted activation latency ----

// Three fully replicated sites on a deterministic triangle: 0-1 and 1-2
// are 10 ms apart, 0-2 is 200 ms. Site 0 writes x at t=0; site 1 applies
// it at 10 ms, reads it at 40 ms (Opt-Track only tracks genuine
// reads-from dependencies, so the read is what puts x into site 1's
// causal past), and writes the dependent y at 50 ms. At site 2, y's SM
// arrives at 60 ms but x only at 200 ms, so y must buffer for exactly
// 140 ms before the activation predicate lets it apply.
std::vector<TraceEvent> run_triangle(RingBufferSink& sink,
                                     SimTime log_sample_interval = 0) {
  dsm::ClusterConfig config;
  config.sites = 3;
  config.variables = 2;
  config.replication = 0;  // full
  config.protocol = causal::ProtocolKind::kOptTrack;
  config.record_history = false;
  config.trace_sink = &sink;
  config.log_sample_interval = log_sample_interval;
  const SimTime near = 10 * kMillisecond;
  const SimTime far = 200 * kMillisecond;
  config.latency_model = std::make_shared<sim::GeoLatency>(
      std::vector<std::vector<SimTime>>{{0, near, far}, {near, 0, near}, {far, near, 0}},
      /*jitter=*/0.0);

  workload::Schedule schedule;
  schedule.per_site.resize(3);
  schedule.per_site[0].push_back({workload::Op::Kind::kWrite, 0, 0, 0, true});
  schedule.per_site[1].push_back(
      {workload::Op::Kind::kRead, 0, 40 * kMillisecond, 0, true});
  schedule.per_site[1].push_back(
      {workload::Op::Kind::kWrite, 1, 50 * kMillisecond, 0, true});

  dsm::Cluster cluster(config);
  cluster.execute(schedule);
  return sink.events();
}

TEST(Analyze, HandcraftedScheduleYieldsExactActivationLatency) {
  RingBufferSink sink;
  const AnalysisReport report = analyze(run_triangle(sink));

  EXPECT_EQ(report.sites, 3u);
  ASSERT_EQ(report.activation_total.buffered, 1u);
  ASSERT_EQ(report.activation_total.latency_us.count(), 1u);
  EXPECT_DOUBLE_EQ(report.activation_total.latency_us.mean(), 140000.0);
  EXPECT_DOUBLE_EQ(report.activation_total.latency_us.min(), 140000.0);
  EXPECT_DOUBLE_EQ(report.activation_total.latency_us.max(), 140000.0);
  // The wait happened at site 2; the other sites never buffered.
  ASSERT_TRUE(report.activation_site.count(2));
  EXPECT_EQ(report.activation_site.at(2).buffered, 1u);
  for (const auto& [site, a] : report.activation_site) {
    if (site != 2) {
      EXPECT_EQ(a.buffered, 0u) << "site " << site;
    }
  }
  // Two writes under full replication: each SM goes to both other sites.
  const auto& sm = report.send_kind[static_cast<std::size_t>(MessageKind::kSM)];
  EXPECT_EQ(sm.count, 4u);
  EXPECT_GT(sm.bytes, 0u);
}

// ---- LogSampler ----

TEST(LogSampler, EmitsOccupancySeriesWhenEnabled) {
  RingBufferSink sink;
  const auto events = run_triangle(sink, /*log_sample_interval=*/20 * kMillisecond);
  std::size_t samples = 0;
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kLogSample) {
      ++samples;
      EXPECT_LT(e.site, 3u);
    }
  }
  // The run spans 260 ms (write at 50 ms + 10 ms hop + 200 ms hop), so a
  // 20 ms sampler fires at least a dozen rounds across 3 sites.
  EXPECT_GE(samples, 3u * 10u);

  const AnalysisReport report = analyze(events);
  ASSERT_EQ(report.occupancy.size(), 3u);
  for (const auto& [site, occ] : report.occupancy) {
    EXPECT_GT(occ.samples, 0u) << "site " << site;
    EXPECT_EQ(occ.samples, occ.entries.count());
    EXPECT_FALSE(occ.series.empty());
  }
}

TEST(LogSampler, DisabledByDefault) {
  RingBufferSink sink;
  for (const TraceEvent& e : run_triangle(sink)) {
    EXPECT_NE(e.type, TraceEventType::kLogSample);
  }
}

TEST(LogSampler, SeriesDownsamplesToBoundedPoints) {
  RingBufferSink sink;
  const auto events = run_triangle(sink, /*log_sample_interval=*/kMillisecond);
  AnalysisOptions options;
  options.max_series_points = 16;
  const AnalysisReport report = analyze(events, options);
  for (const auto& [site, occ] : report.occupancy) {
    EXPECT_GT(occ.samples, 16u) << "site " << site;
    EXPECT_LE(occ.series.size(), 16u) << "site " << site;
  }
}

// ---- determinism & round-trip ----

std::vector<TraceEvent> run_partial(std::uint64_t seed, RingBufferSink& sink) {
  dsm::ClusterConfig config;
  config.sites = 4;
  config.variables = 20;
  config.replication = 2;
  config.protocol = causal::ProtocolKind::kOptTrack;
  config.record_history = false;
  config.seed = seed;
  config.trace_sink = &sink;
  config.log_sample_interval = 100 * kMillisecond;

  workload::WorkloadParams wl;
  wl.variables = config.variables;
  wl.ops_per_site = 60;
  wl.seed = seed;

  dsm::Cluster cluster(config);
  cluster.execute(workload::generate_schedule(config.sites, wl));
  return sink.events();
}

TEST(Analyze, ReportIsAPureFunctionOfScheduleAndSeed) {
  RingBufferSink s1, s2, s3;
  const std::string r1 = analyze(run_partial(7, s1)).json();
  const std::string r2 = analyze(run_partial(7, s2)).json();
  const std::string r3 = analyze(run_partial(8, s3)).json();
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1, r3);
}

TEST(Analyze, TraceJsonRoundTripMatchesInMemoryReport) {
  RingBufferSink sink;
  const auto events = run_partial(7, sink);
  AnalysisOptions options;
  options.dropped = sink.dropped();
  const std::string direct = analyze(events, options).json();

  std::string error;
  const Json doc = Json::parse(chrome_trace_string(events, sink.dropped()), &error);
  ASSERT_TRUE(error.empty()) << error;
  const auto trace = read_chrome_trace(doc, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->events.size(), events.size());
  AnalysisOptions rt_options;
  rt_options.dropped = trace->dropped;
  EXPECT_EQ(analyze(trace->events, rt_options).json(), direct);
}

TEST(Analyze, ReportJsonParsesAndCarriesTheSchema) {
  RingBufferSink sink;
  const AnalysisReport report = analyze(run_partial(7, sink));
  std::string error;
  const Json doc = Json::parse(report.json(), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(doc.at("schema").str(), "causim.analysis.v1");
  EXPECT_DOUBLE_EQ(doc.at("events").number(),
                   static_cast<double>(report.events));
  EXPECT_TRUE(doc.at("activation").at("total").at("latency_us").contains("p99"));
  EXPECT_GT(doc.at("metadata_attribution").at("per_kind").at("SM").at("count").number(),
            0.0);
  EXPECT_EQ(doc.at("log_occupancy").at("per_site").size(), 4u);
}

// ---- structural diff ----

Json parse_ok(const char* text) {
  std::string error;
  Json doc = Json::parse(text, &error);
  EXPECT_TRUE(error.empty()) << error;
  return doc;
}

std::string diff_string(const Json& a, const Json& b) {
  std::ostringstream out;
  write_json_diff(out, a, b);
  return out.str();
}

TEST(Diff, EqualDocumentsPassThroughUnchanged) {
  const Json a = parse_ok(R"({"x": 1, "y": [1, 2], "s": "same"})");
  EXPECT_EQ(Json::parse(diff_string(a, a)), a);
}

TEST(Diff, NumbersGetDeltasAndMissingKeysGetNulls) {
  const Json a = parse_ok(R"({"x": 1, "y": {"z": 2}, "s": "same", "arr": [1, 2]})");
  const Json b =
      parse_ok(R"({"x": 3, "y": {"z": 2}, "s": "same", "arr": [1, 5], "n": true})");
  const Json diff = parse_ok(diff_string(a, b).c_str());
  EXPECT_DOUBLE_EQ(diff.at("x").at("a").number(), 1.0);
  EXPECT_DOUBLE_EQ(diff.at("x").at("b").number(), 3.0);
  EXPECT_DOUBLE_EQ(diff.at("x").at("delta").number(), 2.0);
  EXPECT_DOUBLE_EQ(diff.at("y").at("z").number(), 2.0);  // unchanged subtree
  EXPECT_EQ(diff.at("s").str(), "same");
  EXPECT_DOUBLE_EQ(diff.at("arr").at(0).number(), 1.0);
  EXPECT_DOUBLE_EQ(diff.at("arr").at(1).at("delta").number(), 3.0);
  EXPECT_TRUE(diff.at("n").at("a").is_null());
  EXPECT_TRUE(diff.at("n").at("b").boolean());
}

TEST(Diff, ArraysOfDifferentLengthCollapseToLengths) {
  const Json diff =
      parse_ok(diff_string(parse_ok("[1, 2]"), parse_ok("[1, 2, 3]")).c_str());
  EXPECT_DOUBLE_EQ(diff.at("a_length").number(), 2.0);
  EXPECT_DOUBLE_EQ(diff.at("b_length").number(), 3.0);
}

TEST(Diff, TwoProtocolReportsDiffer) {
  RingBufferSink s1, s2;
  const std::string opt = analyze(run_partial(7, s1)).json();

  dsm::ClusterConfig config;
  config.sites = 4;
  config.variables = 20;
  config.replication = 0;  // Full-Track requires full replication
  config.protocol = causal::ProtocolKind::kFullTrack;
  config.record_history = false;
  config.seed = 7;
  config.trace_sink = &s2;
  workload::WorkloadParams wl;
  wl.variables = config.variables;
  wl.ops_per_site = 60;
  wl.seed = 7;
  dsm::Cluster cluster(config);
  cluster.execute(workload::generate_schedule(config.sites, wl));
  const std::string full = analyze(s2.events()).json();

  const Json diff = parse_ok(diff_string(parse_ok(opt.c_str()), parse_ok(full.c_str())).c_str());
  // Same schema on both sides passes through; the SM byte attribution must
  // differ between Opt-Track (partial) and Full-Track (full replication).
  EXPECT_EQ(diff.at("schema").str(), "causim.analysis.v1");
  const Json& sm = diff.at("metadata_attribution").at("per_kind").at("SM");
  EXPECT_TRUE(sm.at("bytes").contains("delta"));
}

}  // namespace
}  // namespace causim::obs::analysis
