// Seeded conformance fuzz suite for the fault stack: every protocol, under
// every drop rate, over many seeds, must (a) remain causally consistent by
// the checker, (b) deliver every update exactly once in FIFO order (the
// reliability layer quiesces with nothing unacked — enforced by a CHECK
// inside Cluster::execute and re-asserted here), and (c) send exactly the
// protocol-level messages the fault-free run of the same seed sends: the
// reliability layer hides the loss, so the paper's message *counts* are
// invariant under faults (per-message meta bytes may drift, because what a
// site piggybacks depends on arrival order — that is the protocol's own
// behaviour, not a leak from the fault stack).
//
// Seed count scales with CAUSIM_FAULT_SEEDS (default 50; CI's PR lane sets
// a short value, the fault-matrix lane the full one).
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dsm/cluster.hpp"
#include "obs/analysis/analysis.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace_sink.hpp"
#include "workload/schedule.hpp"

namespace causim {
namespace {

int seed_count() {
  if (const char* env = std::getenv("CAUSIM_FAULT_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 50;
}

dsm::ClusterConfig base_config(causal::ProtocolKind protocol, std::uint64_t seed) {
  dsm::ClusterConfig config;
  config.sites = 4;
  config.variables = 12;
  config.replication = causal::requires_full_replication(protocol) ? 0 : 2;
  config.protocol = protocol;
  config.seed = seed;
  config.record_history = true;
  return config;
}

workload::Schedule schedule_for(std::uint64_t seed) {
  workload::WorkloadParams wl;
  wl.variables = 12;
  wl.write_rate = 0.5;
  wl.ops_per_site = 30;
  wl.seed = seed;
  return workload::generate_schedule(4, wl);
}

struct Outcome {
  std::array<std::uint64_t, kAllMessageKinds.size()> counts{};
  std::array<std::uint64_t, kAllMessageKinds.size()> meta_bytes{};
  bool causal_ok = false;
  std::uint64_t drops = 0;
  std::uint64_t retransmits = 0;
};

Outcome run_once(causal::ProtocolKind protocol, double drop_rate,
                 std::uint64_t seed,
                 const net::ReliableConfig& reliable = {}) {
  dsm::ClusterConfig config = base_config(protocol, seed);
  if (drop_rate > 0.0) config.fault_plan = faults::FaultPlan::uniform_drop(drop_rate);
  config.reliable_config = reliable;
  dsm::Cluster cluster(config);
  cluster.execute(schedule_for(seed));

  Outcome outcome;
  const stats::MessageStats stats = cluster.aggregate_message_stats();
  for (const MessageKind kind : kAllMessageKinds) {
    outcome.counts[static_cast<std::size_t>(kind)] = stats.of(kind).count;
    outcome.meta_bytes[static_cast<std::size_t>(kind)] = stats.of(kind).meta_bytes;
  }
  outcome.causal_ok = cluster.check().ok();
  if (cluster.injector() != nullptr) outcome.drops = cluster.injector()->drops();
  if (cluster.reliable() != nullptr) {
    // execute() already CHECKed quiescent(); re-assert the invariant the
    // suite advertises: exactly-once delivery means nothing left unacked.
    EXPECT_TRUE(cluster.reliable()->quiescent());
    outcome.retransmits = cluster.reliable()->retransmits();
  }
  return outcome;
}

/// The matrix body: for every seed, a fault-free baseline and one faulty
/// run per drop rate; causal consistency always, counts always equal. The
/// `reliable` knobs select the ARQ policy under test — the conformance
/// contract is policy-independent, so the matrix runs once per mode.
void run_matrix(causal::ProtocolKind protocol,
                const net::ReliableConfig& reliable = {}) {
  const int seeds = seed_count();
  const double rates[] = {0.10, 0.30, 0.50};
  std::uint64_t total_drops = 0;
  std::uint64_t total_retransmits = 0;
  for (int s = 1; s <= seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    const Outcome baseline = run_once(protocol, 0.0, seed);
    ASSERT_TRUE(baseline.causal_ok)
        << to_string(protocol) << " violates causality fault-free, seed " << s;
    for (const double rate : rates) {
      const Outcome faulty = run_once(protocol, rate, seed, reliable);
      EXPECT_TRUE(faulty.causal_ok) << to_string(protocol) << " seed " << s
                                    << " drop " << rate << ": causal violation";
      // Counts are invariant for every protocol. Meta *bytes* are only
      // invariant where per-message meta is fixed-size (Full-Track's
      // matrix, optP's vector); the KS-log protocols piggyback by
      // arrival order, which faults legitimately perturb.
      const bool fixed_meta = protocol == causal::ProtocolKind::kFullTrack ||
                              protocol == causal::ProtocolKind::kOptP;
      for (const MessageKind kind : kAllMessageKinds) {
        EXPECT_EQ(faulty.counts[static_cast<std::size_t>(kind)],
                  baseline.counts[static_cast<std::size_t>(kind)])
            << to_string(protocol) << " seed " << s << " drop " << rate << ": "
            << to_string(kind) << " count diverged from the fault-free run";
        if (fixed_meta) {
          EXPECT_EQ(faulty.meta_bytes[static_cast<std::size_t>(kind)],
                    baseline.meta_bytes[static_cast<std::size_t>(kind)])
              << to_string(protocol) << " seed " << s << " drop " << rate
              << ": " << to_string(kind) << " meta bytes diverged";
        }
      }
      total_drops += faulty.drops;
      total_retransmits += faulty.retransmits;
    }
  }
  // The matrix is vacuous if the injector never fired.
  EXPECT_GT(total_drops, 0u);
  EXPECT_GT(total_retransmits, 0u);
}

TEST(FaultConformance, FullTrackMatrix) {
  run_matrix(causal::ProtocolKind::kFullTrack);
}
TEST(FaultConformance, OptTrackMatrix) {
  run_matrix(causal::ProtocolKind::kOptTrack);
}
TEST(FaultConformance, OptTrackCrpMatrix) {
  run_matrix(causal::ProtocolKind::kOptTrackCrp);
}
TEST(FaultConformance, OptPMatrix) {
  run_matrix(causal::ProtocolKind::kOptP);
}

// The same contract must hold under selective repeat + adaptive RTO — the
// upgraded ARQ engine changes which frames cross the wire, never what the
// protocols above it observe.
net::ReliableConfig sr_adaptive() {
  net::ReliableConfig reliable;
  reliable.arq = net::ArqMode::kSelectiveRepeat;
  reliable.adaptive_rto = true;
  return reliable;
}

TEST(FaultConformance, FullTrackMatrixSelectiveRepeatAdaptive) {
  run_matrix(causal::ProtocolKind::kFullTrack, sr_adaptive());
}
TEST(FaultConformance, OptTrackMatrixSelectiveRepeatAdaptive) {
  run_matrix(causal::ProtocolKind::kOptTrack, sr_adaptive());
}
TEST(FaultConformance, OptTrackCrpMatrixSelectiveRepeatAdaptive) {
  run_matrix(causal::ProtocolKind::kOptTrackCrp, sr_adaptive());
}
TEST(FaultConformance, OptPMatrixSelectiveRepeatAdaptive) {
  run_matrix(causal::ProtocolKind::kOptP, sr_adaptive());
}

// ---- Equivalence: the layer is invisible when disabled ----

/// With an empty fault plan and reliable_channel off, no fault stack is
/// built at all — the run must be byte-for-byte the run it was before the
/// subsystem existed. Two identical seeded runs produce byte-identical
/// analysis reports, the stack accessors stay null, and the report's
/// "faults" section is all zeros.
TEST(FaultEquivalence, DisabledStackLeavesReportByteIdentical) {
  const auto report_json = [](obs::analysis::AnalysisReport* out) {
    dsm::ClusterConfig config = base_config(causal::ProtocolKind::kOptTrack, 17);
    obs::RingBufferSink sink;
    config.trace_sink = &sink;
    config.log_sample_interval = 50 * kMillisecond;
    dsm::Cluster cluster(config);
    EXPECT_EQ(cluster.injector(), nullptr);
    EXPECT_EQ(cluster.reliable(), nullptr);
    EXPECT_EQ(&cluster.edge(), &cluster.transport());
    cluster.execute(schedule_for(17));
    const auto report = obs::analysis::analyze(sink.events());
    if (out != nullptr) *out = report;
    return report.json();
  };
  obs::analysis::AnalysisReport report;
  const std::string first = report_json(&report);
  const std::string second = report_json(nullptr);
  EXPECT_EQ(first, second);
  EXPECT_EQ(report.faults_total.drops, 0u);
  EXPECT_EQ(report.faults_total.retransmits, 0u);
  EXPECT_TRUE(report.faults_site.empty());
}

/// Protocol-level msg.* metrics are identical between a faulty and a
/// fault-free run of the same seed; fault activity appears only under the
/// faults.* / net.reliable.* namespaces, and those namespaces do not even
/// exist in a fault-free export.
TEST(FaultEquivalence, FaultActivityStaysOutOfProtocolMetrics) {
  const auto metrics_for = [](double drop_rate) {
    dsm::ClusterConfig config = base_config(causal::ProtocolKind::kOptTrack, 23);
    if (drop_rate > 0.0) {
      config.fault_plan = faults::FaultPlan::uniform_drop(drop_rate);
    }
    dsm::Cluster cluster(config);
    cluster.execute(schedule_for(23));
    auto registry = std::make_unique<obs::MetricsRegistry>();
    cluster.export_metrics(*registry);
    return registry;
  };
  const auto clean = metrics_for(0.0);
  const auto faulty = metrics_for(0.3);

  for (const MessageKind kind : kAllMessageKinds) {
    const std::string name = std::string("msg.") + to_string(kind) + ".count";
    EXPECT_EQ(clean->counter(name).value(), faulty->counter(name).value()) << name;
  }
  EXPECT_GT(faulty->counter("faults.drop.count").value(), 0u);
  EXPECT_GT(faulty->counter("net.reliable.retransmit.count").value(), 0u);
  EXPECT_GT(faulty->counter("net.reliable.data.count").value(), 0u);

  // The fault-free export must not mention the fault stack at all. (The
  // counter() lookups above created entries in `clean`, so serialize a
  // fresh export to check.)
  std::ostringstream json;
  metrics_for(0.0)->write_json(json);
  EXPECT_EQ(json.str().find("faults."), std::string::npos);
  EXPECT_EQ(json.str().find("net.reliable."), std::string::npos);
}

/// The analysis report routes drop/retransmit events into its "faults"
/// section — and the section's totals reconcile exactly with the stack's
/// own counters, while protocol send accounting matches the fault-free
/// message counts.
TEST(FaultEquivalence, ReportFaultSectionReconcilesWithStackCounters) {
  const auto report_for = [](double drop_rate) {
    dsm::ClusterConfig config = base_config(causal::ProtocolKind::kOptTrack, 31);
    if (drop_rate > 0.0) {
      config.fault_plan = faults::FaultPlan::uniform_drop(drop_rate);
    }
    obs::RingBufferSink sink;
    config.trace_sink = &sink;
    dsm::Cluster cluster(config);
    cluster.execute(schedule_for(31));
    const auto report = obs::analysis::analyze(sink.events());
    if (drop_rate > 0.0) {
      // The report's fault section reconciles exactly with the stack's
      // own counters.
      EXPECT_NE(cluster.injector(), nullptr);
      EXPECT_NE(cluster.reliable(), nullptr);
      EXPECT_EQ(report.faults_total.drops, cluster.injector()->drops());
      EXPECT_EQ(report.faults_total.retransmits, cluster.reliable()->retransmits());
      EXPECT_GT(report.faults_total.drops, 0u);
      EXPECT_GT(report.faults_total.dropped_bytes, 0u);
    }
    return report;
  };
  const auto clean = report_for(0.0);
  const auto faulty = report_for(0.3);

  // Reliability frames never leak into the protocol send attribution:
  // despite drops and retransmissions on the wire, the faulty run records
  // exactly the per-kind send events of the fault-free run (kSend is
  // emitted by the sites, above the fault stack — including warm-up ops,
  // so this is the full trace-level count, not the trimmed stats).
  for (const MessageKind kind : kAllMessageKinds) {
    EXPECT_EQ(faulty.send_kind[static_cast<std::size_t>(kind)].count,
              clean.send_kind[static_cast<std::size_t>(kind)].count)
        << to_string(kind);
  }
}

/// Scripted pause windows behave as a transient partition: messages sent
/// into the window are dropped and retransmitted after it closes; the run
/// still converges causally consistent with unchanged counts.
TEST(FaultConformance, PauseWindowIsSurvivable) {
  const Outcome baseline = run_once(causal::ProtocolKind::kOptTrack, 0.0, 41);
  dsm::ClusterConfig config = base_config(causal::ProtocolKind::kOptTrack, 41);
  config.fault_plan.pauses.push_back(
      faults::PauseWindow{1, 100 * kMillisecond, 2 * kSecond});
  dsm::Cluster cluster(config);
  cluster.execute(schedule_for(41));
  EXPECT_TRUE(cluster.check().ok());
  ASSERT_NE(cluster.injector(), nullptr);
  EXPECT_GT(cluster.injector()->drops(), 0u);
  const stats::MessageStats stats = cluster.aggregate_message_stats();
  for (const MessageKind kind : kAllMessageKinds) {
    EXPECT_EQ(stats.of(kind).count,
              baseline.counts[static_cast<std::size_t>(kind)])
        << to_string(kind);
  }
}

}  // namespace
}  // namespace causim
