// Property tests over randomized KsLogs: the algebraic laws the Opt-Track
// pruning machinery relies on.
#include <gtest/gtest.h>

#include "causal/ks_log.hpp"
#include "sim/rng.hpp"

namespace causim::causal {
namespace {

constexpr SiteId kN = 10;

KsLog random_log(sim::Pcg32& rng, std::size_t entries) {
  KsLog log(kN);
  for (std::size_t e = 0; e < entries; ++e) {
    const auto writer = static_cast<SiteId>(rng.uniform_int(0, kN - 1));
    const auto clock = static_cast<WriteClock>(rng.uniform_int(1, 30));
    DestSet d(kN);
    const auto count = rng.uniform_int(0, 4);
    for (long k = 0; k < count; ++k) {
      d.insert(static_cast<SiteId>(rng.uniform_int(0, kN - 1)));
    }
    log.add({writer, clock}, d);
  }
  return log;
}

/// True if every constraint (write → destination) in `a` is also in `b`.
bool constraints_subset(const KsLog& a, const KsLog& b) {
  bool subset = true;
  a.for_each([&](const WriteId& id, const DestSet& dests) {
    if (!subset || dests.empty()) return;
    const DestSet* other = b.find(id);
    if (other == nullptr || !dests.is_subset_of(*other)) subset = false;
  });
  return subset;
}

class KsLogProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KsLogProperty, SerializeRoundTripIsIdentity) {
  sim::Pcg32 rng(GetParam());
  const KsLog log = random_log(rng, 25);
  for (const auto cw : {serial::ClockWidth::k4Bytes, serial::ClockWidth::k8Bytes}) {
    serial::ByteWriter w(cw);
    log.serialize(w);
    EXPECT_EQ(w.size(), log.wire_bytes(cw));
    serial::ByteReader r(w.bytes(), cw);
    EXPECT_EQ(KsLog::deserialize(r), log);
  }
}

TEST_P(KsLogProperty, MergeIsIdempotent) {
  sim::Pcg32 rng(GetParam());
  KsLog log = random_log(rng, 25);
  const KsLog other = random_log(rng, 25);
  log.merge(other);
  KsLog again = log;
  again.merge(other);
  EXPECT_EQ(again, log);
}

TEST_P(KsLogProperty, SelfMergeIsIdentity) {
  sim::Pcg32 rng(GetParam());
  KsLog log = random_log(rng, 25);
  const KsLog copy = log;
  log.merge(copy);
  EXPECT_EQ(log, copy);
}

TEST_P(KsLogProperty, MergeNeverInventsConstraints) {
  // Every (write → destination) constraint after a merge existed in one of
  // the inputs — pruning may drop information, never create it.
  sim::Pcg32 rng(GetParam());
  const KsLog a = random_log(rng, 20);
  const KsLog b = random_log(rng, 20);
  KsLog merged = a;
  merged.merge(b);
  bool invented = false;
  merged.for_each([&](const WriteId& id, const DestSet& dests) {
    dests.for_each([&](SiteId d) {
      const DestSet* in_a = a.find(id);
      const DestSet* in_b = b.find(id);
      const bool from_a = in_a != nullptr && in_a->contains(d);
      const bool from_b = in_b != nullptr && in_b->contains(d);
      if (!from_a && !from_b) invented = true;
    });
  });
  EXPECT_FALSE(invented);
}

TEST_P(KsLogProperty, MergePreservesPerWriterMaxClock) {
  sim::Pcg32 rng(GetParam());
  const KsLog a = random_log(rng, 20);
  const KsLog b = random_log(rng, 20);
  KsLog merged = a;
  merged.merge(b);
  for (SiteId w = 0; w < kN; ++w) {
    EXPECT_EQ(merged.max_clock_of(w), std::max(a.max_clock_of(w), b.max_clock_of(w)));
  }
}

TEST_P(KsLogProperty, PruneOperationsOnlyShrink) {
  sim::Pcg32 rng(GetParam());
  KsLog log = random_log(rng, 25);
  const KsLog before = log;

  DestSet pruned(kN);
  pruned.insert(static_cast<SiteId>(rng.uniform_int(0, kN - 1)));
  pruned.insert(static_cast<SiteId>(rng.uniform_int(0, kN - 1)));
  log.prune_dests(pruned);
  EXPECT_TRUE(constraints_subset(log, before));

  log.prune_by_program_order();
  EXPECT_TRUE(constraints_subset(log, before));

  std::vector<WriteClock> applied(kN, 0);
  applied[0] = 15;
  log.prune_applied(3, applied);
  EXPECT_TRUE(constraints_subset(log, before));
}

TEST_P(KsLogProperty, PurgeDropsOnlyEmptyNonLatestEntries) {
  sim::Pcg32 rng(GetParam());
  KsLog log = random_log(rng, 25);
  const KsLog before = log;
  log.purge();
  // No constraint lost…
  EXPECT_TRUE(constraints_subset(before, log));
  // …and every surviving empty entry is its writer's latest.
  log.for_each([&](const WriteId& id, const DestSet& dests) {
    if (dests.empty()) {
      EXPECT_EQ(log.max_clock_of(id.writer), id.clock);
    }
  });
  // Purge is idempotent.
  KsLog again = log;
  again.purge();
  EXPECT_EQ(again, log);
}

TEST_P(KsLogProperty, ProgramOrderPruneIsIdempotent) {
  sim::Pcg32 rng(GetParam());
  KsLog log = random_log(rng, 25);
  log.prune_by_program_order();
  KsLog again = log;
  again.prune_by_program_order();
  EXPECT_EQ(again, log);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KsLogProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace causim::causal
