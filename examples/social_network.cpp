// social_network — the workload that motivates the paper's §V-C argument.
//
// A photo-sharing service: users post multimedia objects (large payloads,
// Zipf-popular), friends read them. The example runs the same social
// workload twice — partially replicated with Opt-Track (p = 0.3·n) and
// fully replicated with Opt-Track-CRP — and reports what actually crosses
// the network: with 100 KB-class payloads the causal meta-data is a
// fraction of a percent, and full replication ships every photo to every
// site, so partial replication moves far fewer total bytes while keeping
// causal consistency (a comment thread never shows a reply before the post
// it answers).
#include <iostream>

#include "bench_support/experiment.hpp"
#include "dsm/cluster.hpp"
#include "stats/table.hpp"
#include "workload/schedule.hpp"

int main() {
  using namespace causim;

  constexpr SiteId kSites = 20;
  constexpr VarId kObjects = 200;  // user timelines / photo albums

  workload::WorkloadParams wl;
  wl.variables = kObjects;
  wl.write_rate = 0.3;        // mostly browsing, some posting
  wl.ops_per_site = 300;
  wl.zipf_s = 0.9;            // popular accounts get most traffic
  wl.payload_lo = 20 * 1024;  // photos: 20 KB – 200 KB
  wl.payload_hi = 200 * 1024;
  wl.seed = 2026;
  const workload::Schedule feed = workload::generate_schedule(kSites, wl);

  stats::Table table("Photo-sharing workload: partial vs full replication");
  table.set_columns({"deployment", "messages", "meta-data MB", "payload MB",
                     "meta share %", "avg fetch ms"});

  for (const bool partial : {true, false}) {
    dsm::ClusterConfig config;
    config.sites = kSites;
    config.variables = kObjects;
    config.replication = partial ? bench_support::partial_replication_factor(kSites) : 0;
    config.protocol = partial ? causal::ProtocolKind::kOptTrack
                              : causal::ProtocolKind::kOptTrackCrp;
    config.seed = 2026;
    config.record_history = true;

    dsm::Cluster cluster(config);
    cluster.execute(feed);

    const auto check = cluster.check();
    if (!check.ok()) {
      std::cerr << "causal violation: " << check.violations.front() << "\n";
      return 1;
    }

    const auto stats = cluster.aggregate_message_stats();
    const auto total = stats.total();
    const double meta_mb = static_cast<double>(total.overhead_bytes()) / (1024.0 * 1024.0);
    const double payload_mb = static_cast<double>(total.payload_bytes) / (1024.0 * 1024.0);
    const double share = 100.0 * static_cast<double>(total.overhead_bytes()) /
                         static_cast<double>(total.total_bytes());
    const auto fetch = cluster.aggregate_fetch_latency();
    table.add_row({partial ? "partial (Opt-Track, p=6)" : "full (Opt-Track-CRP)",
                   stats::Table::integer(total.count), stats::Table::num(meta_mb, 2),
                   stats::Table::num(payload_mb, 1), stats::Table::num(share, 3),
                   fetch.count() == 0
                       ? std::string("n/a (all local)")
                       : stats::Table::num(fetch.mean() / kMillisecond, 1)});
  }

  std::cout << table;
  std::cout << "\nEvery execution was verified causally consistent: no reader ever\n"
               "saw a comment before the photo it was attached to.\n";
  return 0;
}
