// protocol_comparison — all four protocols of the paper on one schedule.
//
// Runs Full-Track and Opt-Track under partial replication (p = 0.3·n) and
// optP and Opt-Track-CRP under full replication, with the same workload
// shape, and prints the §V metrics side by side: message counts, per-kind
// average meta-data sizes, local log footprints, and the causal checker's
// verdict. A compact, runnable summary of the paper's whole evaluation.
#include <iostream>

#include "bench_support/experiment.hpp"
#include "dsm/cluster.hpp"
#include "stats/table.hpp"
#include "workload/schedule.hpp"

int main() {
  using namespace causim;

  constexpr SiteId kSites = 16;
  constexpr double kWriteRate = 0.5;

  stats::Table table("All four protocols, n = 16, q = 100, w_rate = 0.5");
  table.set_columns({"protocol", "replication", "messages", "avg SM B", "avg RM B",
                     "total meta KB", "log entries", "causal?"});

  struct Row {
    causal::ProtocolKind kind;
    bool partial;
  };
  for (const Row row : {Row{causal::ProtocolKind::kFullTrack, true},
                        Row{causal::ProtocolKind::kOptTrack, true},
                        Row{causal::ProtocolKind::kOptP, false},
                        Row{causal::ProtocolKind::kOptTrackCrp, false}}) {
    bench_support::ExperimentParams params;
    params.protocol = row.kind;
    params.sites = kSites;
    params.write_rate = kWriteRate;
    params.replication =
        row.partial ? bench_support::partial_replication_factor(kSites) : 0;
    params.ops_per_site = 300;
    params.seeds = {99};
    params.check = true;

    const auto r = bench_support::run_experiment(params);
    table.add_row(
        {to_string(row.kind), row.partial ? "partial p=5" : "full",
         stats::Table::integer(static_cast<std::uint64_t>(r.mean_message_count())),
         stats::Table::num(r.avg_overhead(MessageKind::kSM), 1),
         r.stats.of(MessageKind::kRM).count == 0
             ? std::string("-")
             : stats::Table::num(r.avg_overhead(MessageKind::kRM), 1),
         stats::Table::num(r.mean_total_overhead_bytes() / 1024.0, 1),
         stats::Table::num(r.log_entries.mean(), 1), r.check_ok ? "yes" : "NO"});
    if (!r.check_ok) {
      std::cerr << "violation: " << r.violations.front() << "\n";
      return 1;
    }
  }

  std::cout << table;
  std::cout
      << "\nReading the table the way the paper does:\n"
         "  * Full-Track vs Opt-Track — same message pattern, ~an order of\n"
         "    magnitude less meta-data at this n (Fig. 1).\n"
         "  * optP vs Opt-Track-CRP — same (n-1)·w messages, but O(n) vs O(d)\n"
         "    piggybacks (Figs. 5-8).\n"
         "  * partial vs full — far fewer messages at this write rate, per the\n"
         "    crossover condition w_rate > 2/(n+1) (Table IV / Eq. 2).\n";
  return 0;
}
