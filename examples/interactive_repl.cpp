// interactive_repl — poke a causal DSM cluster by hand.
//
// A small REPL over a simulated cluster; every command advances the
// discrete-event network only as far as you let it, so you can watch
// updates being held back by the activation predicate and released in
// causal order. Try:
//
//   > write 0 5        (site 0 writes variable 5)
//   > peek 1 5         (site 1's replica of 5 — maybe still the old value)
//   > settle           (deliver everything in flight)
//   > read 1 5         (a proper read, remote fetch if needed)
//   > pending          (per-site held updates)
//   > stats
//   > check            (run the causal checker on everything so far)
//
// Reads lines from stdin; runs a scripted demo when stdin is not a TTY and
// empty (so the build's smoke runs stay non-interactive).
#include <iostream>
#include <sstream>
#include <string>

#include "causim.hpp"

namespace {

using namespace causim;

void help() {
  std::cout << "commands:\n"
               "  write <site> <var> [payload]   issue a write\n"
               "  read <site> <var>              issue a read (blocks the REPL until served)\n"
               "  peek <site> <var>              show the local replica without reading\n"
               "  step [ms]                      advance simulated time (default 50 ms)\n"
               "  settle                         run the network dry\n"
               "  pending                        held updates per site\n"
               "  placement <var>                replica set of a variable\n"
               "  stats                          message statistics so far\n"
               "  check                          run the causal checker\n"
               "  quit\n";
}

}  // namespace

int main() {
  dsm::ClusterConfig config;
  config.sites = 5;
  config.variables = 16;
  config.replication = 2;
  config.protocol = causal::ProtocolKind::kOptTrack;
  config.seed = 11;
  dsm::Cluster cluster(config);

  std::cout << "causim REPL — 5 sites, 16 variables, p = 2, Opt-Track. 'help' for help.\n";

  auto run_command = [&](const std::string& line) -> bool {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      help();
      return true;
    }
    if (cmd == "write") {
      int site = -1, var = -1, payload = 0;
      in >> site >> var >> payload;
      if (site < 0 || var < 0 || site >= config.sites ||
          var >= static_cast<int>(config.variables)) {
        std::cout << "usage: write <site 0-4> <var 0-15> [payload]\n";
        return true;
      }
      const WriteId w = cluster.site(static_cast<SiteId>(site))
                            .write(static_cast<VarId>(var),
                                   static_cast<std::uint32_t>(payload));
      std::cout << "write ⟨site " << w.writer << ", clock " << w.clock
                << "⟩ multicast to sites "
                << [&] {
                     std::string s;
                     cluster.placement()
                         .replicas(static_cast<VarId>(var))
                         .for_each([&](SiteId d) {
                           s += (s.empty() ? "" : ",") + std::to_string(d);
                         });
                     return s;
                   }()
                << "\n";
      return true;
    }
    if (cmd == "read") {
      int site = -1, var = -1;
      in >> site >> var;
      if (site < 0 || var < 0 || site >= config.sites ||
          var >= static_cast<int>(config.variables)) {
        std::cout << "usage: read <site> <var>\n";
        return true;
      }
      bool done = false;
      cluster.site(static_cast<SiteId>(site))
          .read(static_cast<VarId>(var), [&](Value v, WriteId w) {
            done = true;
            if (is_null(w)) {
              std::cout << "  -> ⊥ (never written)\n";
            } else {
              std::cout << "  -> value id " << v.id << " written by ⟨site " << w.writer
                        << ", clock " << w.clock << "⟩\n";
            }
          });
      while (!done) {
        cluster.simulator().run_until(cluster.simulator().now() + 10 * kMillisecond);
      }
      return true;
    }
    if (cmd == "peek") {
      int site = -1, var = -1;
      in >> site >> var;
      if (site < 0 || var < 0 || site >= config.sites ||
          var >= static_cast<int>(config.variables)) {
        std::cout << "usage: peek <site> <var>\n";
        return true;
      }
      if (!cluster.placement().replicated_at(static_cast<VarId>(var),
                                             static_cast<SiteId>(site))) {
        std::cout << "  site " << site << " does not replicate var " << var << "\n";
        return true;
      }
      const auto [v, w] = cluster.site(static_cast<SiteId>(site))
                              .local_value(static_cast<VarId>(var));
      if (is_null(w)) {
        std::cout << "  replica holds ⊥\n";
      } else {
        std::cout << "  replica holds value of ⟨site " << w.writer << ", clock "
                  << w.clock << "⟩\n";
      }
      return true;
    }
    if (cmd == "step") {
      long ms = 50;
      in >> ms;
      cluster.simulator().run_until(cluster.simulator().now() + ms * kMillisecond);
      std::cout << "  t = " << cluster.simulator().now() / kMillisecond << " ms\n";
      return true;
    }
    if (cmd == "settle") {
      cluster.settle();
      std::cout << "  network drained, t = " << cluster.simulator().now() / kMillisecond
                << " ms\n";
      return true;
    }
    if (cmd == "pending") {
      for (SiteId s = 0; s < config.sites; ++s) {
        std::cout << "  site " << s << ": " << cluster.site(s).pending_updates()
                  << " held update(s)\n";
      }
      return true;
    }
    if (cmd == "placement") {
      int var = -1;
      in >> var;
      if (var < 0 || var >= static_cast<int>(config.variables)) {
        std::cout << "usage: placement <var>\n";
        return true;
      }
      std::cout << "  var " << var << " lives on sites ";
      cluster.placement().replicas(static_cast<VarId>(var)).for_each([](SiteId s) {
        std::cout << s << " ";
      });
      std::cout << "\n";
      return true;
    }
    if (cmd == "stats") {
      const auto t = cluster.aggregate_message_stats();
      std::cout << "  SM " << t.of(MessageKind::kSM).count << ", FM "
                << t.of(MessageKind::kFM).count << ", RM "
                << t.of(MessageKind::kRM).count << "; meta-data bytes "
                << t.total().overhead_bytes() << "\n";
      return true;
    }
    if (cmd == "check") {
      const auto result = cluster.check();
      std::cout << (result.ok() ? "  causally consistent" : "  VIOLATION: ")
                << (result.ok() ? "" : result.violations.front()) << " ("
                << result.writes << " writes, " << result.reads << " reads, "
                << result.applies << " applies)\n";
      return true;
    }
    std::cout << "unknown command (try 'help')\n";
    return true;
  };

  std::string line;
  bool interactive = false;
  while (std::getline(std::cin, line)) {
    interactive = true;
    if (!run_command(line)) break;
    std::cout << "> " << std::flush;
  }
  if (!interactive) {
    // Scripted demo for non-interactive runs.
    std::cout << "(no stdin — running the scripted demo)\n";
    for (const char* cmd :
         {"write 0 3", "pending", "peek 1 3", "settle", "read 1 3", "write 1 4",
          "settle", "read 2 4", "stats", "check"}) {
      std::cout << "> " << cmd << "\n";
      run_command(cmd);
    }
  }
  return 0;
}
