// Quickstart — a 5-site partially replicated causal store in ~40 lines.
//
// Builds a cluster running the Opt-Track protocol, performs a classic
// causal chain (Alice posts, Bob reads and replies), and shows that every
// site observes the two writes in causal order.
#include <iostream>

#include "dsm/cluster.hpp"

int main() {
  using namespace causim;

  dsm::ClusterConfig config;
  config.sites = 5;
  config.variables = 10;
  config.replication = 2;  // each variable lives on 2 of the 5 sites
  config.protocol = causal::ProtocolKind::kOptTrack;
  config.seed = 42;

  dsm::Cluster cluster(config);
  constexpr VarId kPost = 0;
  constexpr VarId kReply = 1;

  // Site 0 (Alice) posts; the multicast reaches kPost's replicas.
  cluster.site(0).write(kPost, /*payload_bytes=*/120);
  cluster.settle();

  // Site 1 (Bob) reads the post — possibly via a remote fetch — and replies.
  cluster.site(1).read(kPost, [&](Value v, WriteId w) {
    std::cout << "Bob read Alice's post (value id " << v.id << ", written by site "
              << w.writer << ")\n";
  });
  cluster.settle();
  cluster.site(1).write(kReply, /*payload_bytes=*/80);
  cluster.settle();

  // Everyone who can see the reply can already see the post: that is the
  // causal guarantee. The checker verifies it over the recorded history.
  cluster.site(2).read(kReply, [&](Value v, WriteId w) {
    std::cout << "Site 2 read the reply (value id " << v.id << ", written by site "
              << w.writer << ")\n";
  });
  cluster.settle();

  const auto check = cluster.check();
  std::cout << (check.ok() ? "causal consistency verified" : "VIOLATION!") << " — "
            << check.writes << " writes, " << check.reads << " reads, " << check.applies
            << " applies\n";

  const auto stats = cluster.aggregate_message_stats();
  std::cout << "messages: " << stats.total().count << " (SM "
            << stats.of(MessageKind::kSM).count << ", FM "
            << stats.of(MessageKind::kFM).count << ", RM "
            << stats.of(MessageKind::kRM).count << "), meta-data bytes "
            << stats.total().overhead_bytes() << "\n";
  return check.ok() ? 0 : 1;
}
