// geo_replication — causal consistency across geographic regions.
//
// Twelve sites spread over four regions on a ring (think us-east, eu-west,
// ap-south, us-west): intra-region delay ~5 ms, +35 ms per region hop.
// The example runs the same workload under three replication factors and
// shows the paper's latency/capacity trade-off directly: fewer replicas
// mean fewer update messages but more (and slower) remote fetches; full
// replication makes every read local but multiplies write traffic by n-1.
#include <iostream>
#include <memory>

#include "bench_support/experiment.hpp"
#include "dsm/cluster.hpp"
#include "sim/latency.hpp"
#include "stats/table.hpp"
#include "workload/schedule.hpp"

int main() {
  using namespace causim;

  constexpr SiteId kSites = 12;
  constexpr SiteId kRegions = 4;

  workload::WorkloadParams wl;
  wl.variables = 60;
  wl.write_rate = 0.4;
  wl.ops_per_site = 250;
  wl.seed = 7;
  const workload::Schedule schedule = workload::generate_schedule(kSites, wl);

  const auto geo = std::make_shared<sim::GeoLatency>(sim::GeoLatency::ring(
      kSites, kRegions, /*local=*/5 * kMillisecond, /*per_hop=*/35 * kMillisecond,
      /*jitter=*/0.2));
  // 100 Mbit/s links: big piggybacks and payloads cost wire time, not just
  // bytes (the geo shared_ptr must outlive the bandwidth decorator).
  const auto wire = std::make_shared<sim::BandwidthLatency>(*geo, 12.5e6);

  // Base distances for the nearest-replica fetch policy: the same ring the
  // latency model uses.
  std::vector<std::vector<SimTime>> distances(kSites, std::vector<SimTime>(kSites));
  {
    sim::Pcg32 probe(1);
    for (SiteId a = 0; a < kSites; ++a) {
      for (SiteId b = 0; b < kSites; ++b) distances[a][b] = geo->sample(probe, a, b);
    }
  }

  stats::Table table("Geo-replicated causal store (12 sites, 4 regions)");
  table.set_columns({"replication", "fetch policy", "protocol", "messages", "meta KB",
                     "remote reads", "avg fetch ms", "max fetch ms"});

  struct Row {
    SiteId p;
    dsm::FetchPolicy policy;
  };
  for (const Row row : {Row{3, dsm::FetchPolicy::kHashed},
                        Row{3, dsm::FetchPolicy::kNearest},
                        Row{6, dsm::FetchPolicy::kHashed},
                        Row{6, dsm::FetchPolicy::kNearest},
                        Row{kSites, dsm::FetchPolicy::kHashed}}) {
    const SiteId p = row.p;
    dsm::ClusterConfig config;
    config.sites = kSites;
    config.variables = 60;
    config.replication = p == kSites ? 0 : p;
    config.protocol = p == kSites ? causal::ProtocolKind::kOptTrackCrp
                                  : causal::ProtocolKind::kOptTrack;
    config.seed = 7;
    config.latency_model = wire;
    config.fetch_policy = row.policy;
    if (row.policy == dsm::FetchPolicy::kNearest) config.fetch_distances = distances;

    dsm::Cluster cluster(config);
    cluster.execute(schedule);
    if (!cluster.check().ok()) {
      std::cerr << "causal violation at p=" << p << "\n";
      return 1;
    }

    const auto stats = cluster.aggregate_message_stats();
    const auto fetch = cluster.aggregate_fetch_latency();
    table.add_row(
        {p == kSites ? "full (p=12)" : "partial (p=" + std::to_string(p) + ")",
         p == kSites ? "-"
                     : (row.policy == dsm::FetchPolicy::kNearest ? "nearest" : "hashed"),
         to_string(config.protocol), stats::Table::integer(stats.total().count),
         stats::Table::num(static_cast<double>(stats.total().overhead_bytes()) / 1024.0, 1),
         stats::Table::integer(stats.of(MessageKind::kFM).count),
         fetch.count() == 0 ? std::string("-")
                            : stats::Table::num(fetch.mean() / kMillisecond, 1),
         fetch.count() == 0 ? std::string("-")
                            : stats::Table::num(fetch.max() / kMillisecond, 1)});
  }

  std::cout << table;
  std::cout << "\nReads of locally replicated objects are always served at local\n"
               "memory speed; only cross-region fetches pay wide-area round trips.\n"
               "Causal consistency held in every configuration.\n";
  return 0;
}
